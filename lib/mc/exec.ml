open Dex_vector
open Dex_net

type kind = Message | Timer

type key = { src : Pid.t; dst : Pid.t; kind : kind; chan : int }

let pp_key ppf k =
  Format.fprintf ppf "%a>%a:%s:%d" Pid.pp k.src Pid.pp k.dst
    (match k.kind with Message -> "M" | Timer -> "T")
    k.chan

let key_to_string k =
  Format.asprintf "%d>%d:%s:%d" k.src k.dst
    (match k.kind with Message -> "M" | Timer -> "T")
    k.chan

let key_of_string s =
  match String.split_on_char ':' s with
  | [ ends; kind_s; chan_s ] -> begin
    match String.split_on_char '>' ends with
    | [ src_s; dst_s ] -> begin
      match
        ( int_of_string_opt src_s,
          int_of_string_opt dst_s,
          int_of_string_opt chan_s,
          kind_s )
      with
      | Some src, Some dst, Some chan, "M" -> Some { src; dst; kind = Message; chan }
      | Some src, Some dst, Some chan, "T" -> Some { src; dst; kind = Timer; chan }
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

type decision = { value : Value.t; tag : string; depth : int; step : int }

type delivery = { step : int; key : key; depth : int }

type 'msg system = {
  n : int;
  make_instance : Pid.t -> 'msg Protocol.instance;
  make_extra : unit -> (Pid.t * 'msg Protocol.instance) list;
}

type 'msg event = { key : key; payload : 'msg; depth : int }

type 'msg t = {
  sys : 'msg system;
  instances : (Pid.t, 'msg Protocol.instance) Hashtbl.t;
  mutable inflight : 'msg event list;  (* emission order, oldest first *)
  chans : (Pid.t * Pid.t * kind, int) Hashtbl.t;
  mutable nsteps : int;
  decisions : decision option array;
  mutable late : (Pid.t * decision) list;
  mutable deliveries : delivery list;  (* newest first *)
}

let enqueue t ~src ~dst ~kind ~depth payload =
  (* Sends to pids with no instance model the network discarding traffic a
     Byzantine node addresses to non-existent processes — mirrors Runner. *)
  if Hashtbl.mem t.instances dst then begin
    let ck = (src, dst, kind) in
    let chan = Option.value ~default:0 (Hashtbl.find_opt t.chans ck) in
    Hashtbl.replace t.chans ck (chan + 1);
    t.inflight <- t.inflight @ [ { key = { src; dst; kind; chan }; payload; depth } ]
  end

(* [depth] is the causal depth outgoing messages carry, as in
   [Effects.execute]: timer events re-enter the process one level lower so
   that timer-handler emissions keep the depth current when the timer was
   set; a decision consumed a message of depth [depth - 1]. *)
let execute_actions t ~self ~depth actions =
  List.iter
    (function
      | Protocol.Send (dst, m) -> enqueue t ~src:self ~dst ~kind:Message ~depth m
      | Protocol.Set_timer { delay = _; msg } ->
        enqueue t ~src:self ~dst:self ~kind:Timer ~depth:(depth - 1) msg
      | Protocol.Decide { value; tag } ->
        let d = { value; tag; depth = depth - 1; step = t.nsteps } in
        if self >= 0 && self < t.sys.n then begin
          match t.decisions.(self) with
          | None -> t.decisions.(self) <- Some d
          | Some _ -> t.late <- (self, d) :: t.late
        end)
    actions

let create sys =
  let extras = List.sort (fun (a, _) (b, _) -> Pid.compare a b) (sys.make_extra ()) in
  let t =
    {
      sys;
      instances = Hashtbl.create (sys.n + List.length extras);
      inflight = [];
      chans = Hashtbl.create 64;
      nsteps = 0;
      decisions = Array.make sys.n None;
      late = [];
      deliveries = [];
    }
  in
  let ordered =
    List.map (fun p -> (p, sys.make_instance p)) (Pid.all ~n:sys.n) @ extras
  in
  List.iter (fun (p, inst) -> Hashtbl.replace t.instances p inst) ordered;
  List.iter
    (fun (p, inst) -> execute_actions t ~self:p ~depth:1 (inst.Protocol.start ()))
    ordered;
  t

let inflight t = List.map (fun ev -> ev.key) t.inflight

let quiescent t = t.inflight = []

let steps t = t.nsteps

let deliver_event t ev =
  t.nsteps <- t.nsteps + 1;
  t.deliveries <- { step = t.nsteps; key = ev.key; depth = ev.depth } :: t.deliveries;
  match Hashtbl.find_opt t.instances ev.key.dst with
  | None -> ()
  | Some inst ->
    let actions =
      inst.Protocol.on_message ~now:(float_of_int t.nsteps) ~from:ev.key.src ev.payload
    in
    execute_actions t ~self:ev.key.dst ~depth:(ev.depth + 1) actions

let deliver_nth t k =
  let rec split i acc = function
    | [] -> invalid_arg "Exec.deliver_nth: index out of range"
    | ev :: rest when i = k -> (ev, List.rev_append acc rest)
    | ev :: rest -> split (i + 1) (ev :: acc) rest
  in
  if k < 0 then invalid_arg "Exec.deliver_nth: negative index";
  let ev, remaining = split 0 [] t.inflight in
  t.inflight <- remaining;
  deliver_event t ev

let deliver_key t key =
  let rec find i = function
    | [] -> None
    | ev :: _ when ev.key = key -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 t.inflight with
  | None -> false
  | Some k ->
    deliver_nth t k;
    true

let run_fifo ?(max_steps = 100_000) t =
  let rec loop () =
    if t.inflight = [] then true
    else if t.nsteps >= max_steps then false
    else begin
      deliver_nth t 0;
      loop ()
    end
  in
  loop ()

let fingerprint t =
  (* Per-receiver delivered-key sequences, receivers in pid order. Receiver
     state is a function of its own delivery sequence and deliveries at
     distinct receivers commute, so this digest identifies the global
     state. *)
  let per : (Pid.t, Buffer.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (d : delivery) ->
      let buf =
        match Hashtbl.find_opt per d.key.dst with
        | Some b -> b
        | None ->
          let b = Buffer.create 64 in
          Hashtbl.replace per d.key.dst b;
          b
      in
      Buffer.add_string buf (key_to_string d.key);
      Buffer.add_char buf ';')
    (List.rev t.deliveries);
  let pids = List.sort Pid.compare (Hashtbl.fold (fun p _ acc -> p :: acc) per []) in
  String.concat "|"
    (List.map
       (fun p -> Printf.sprintf "%d=%s" p (Buffer.contents (Hashtbl.find per p)))
       pids)

type summary = {
  sys_n : int;
  decisions : decision option array;
  late : (Pid.t * decision) list;
  deliveries : delivery list;
  complete : bool;
}

let summary t =
  {
    sys_n = t.sys.n;
    decisions = Array.copy t.decisions;
    late = List.rev t.late;
    deliveries = List.rev t.deliveries;
    complete = t.inflight = [];
  }

let replay ?(max_steps = 100_000) ?(loose = false) sys schedule =
  let t = create sys in
  List.iter
    (fun key ->
      if t.nsteps < max_steps then
        if not (deliver_key t key) && not loose then
          invalid_arg
            (Printf.sprintf "Exec.replay: %s not in flight" (key_to_string key)))
    schedule;
  t

let to_trace ?pp_msg sys schedule =
  let trace = Dex_sim.Trace.create () in
  let t = create sys in
  let record_decisions_after before_step =
    Array.iteri
      (fun pid d ->
        match d with
        | Some (d : decision) when d.step = before_step ->
          Dex_sim.Trace.recordf trace ~time:(float_of_int d.step)
            "decide %a value=%a depth=%d tag=%s" Pid.pp pid Value.pp d.value d.depth
            d.tag
        | _ -> ())
      t.decisions
  in
  let deliver_traced key =
    let payload_pp ppf ev =
      match pp_msg with
      | Some pp -> pp ppf ev.payload
      | None -> Format.pp_print_string ppf "<msg>"
    in
    match List.find_opt (fun ev -> ev.key = key) t.inflight with
    | None -> ()
    | Some ev ->
      ignore (deliver_key t key);
      Dex_sim.Trace.recordf trace ~time:(float_of_int t.nsteps)
        "deliver %a->%a depth=%d %a" Pid.pp key.src Pid.pp key.dst ev.depth payload_pp
        ev;
      record_decisions_after t.nsteps
  in
  record_decisions_after 0;
  List.iter deliver_traced schedule;
  let rec drain () =
    match t.inflight with
    | [] -> ()
    | _ when t.nsteps >= 100_000 -> ()
    | ev :: _ ->
      deliver_traced ev.key;
      drain ()
  in
  drain ();
  trace
