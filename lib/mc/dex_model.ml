open Dex_vector
open Dex_net
open Dex_condition
module PL = Dex_core.Protocol_lane
module DL = Dex_core.Dex.Lane (Dex_underlying.Uc_oracle)
module KL = Dex_baselines.Kuo_chen.Lane (Dex_underlying.Uc_oracle)
module HL = Dex_baselines.Hbft.Lane (Dex_underlying.Uc_oracle)

type pair_kind = Freq | Prv of Value.t

type fault =
  | Silent
  | Crash_after of int
  | Mute_towards of Pid.t list
  | Replay of int
  | Equivocate of { v1 : Value.t; v2 : Value.t; cut : int }
  | Churn_sched of (int * Adversary.churn_mode) list
      (* dynamic churn (Bracha–Toueg [BecomeByzantine]/[BecomeHonest]): the
         process behaves correctly except that from local step [s_k] on its
         emissions run in [mode_k] — the same {!Adversary.churn} modes the
         live chaos lane flips at runtime, here indexed by the process's own
         message count so schedules are deterministic under exploration *)

let fault_of_choice = function
  | Adversary.Choice_correct -> None
  | Adversary.Choice_silent -> Some Silent
  | Adversary.Choice_crash_after k -> Some (Crash_after k)
  | Adversary.Choice_mute_towards victims -> Some (Mute_towards victims)
  | Adversary.Choice_replayer copies -> Some (Replay copies)

type scenario = {
  lane : PL.id;
  kind : pair_kind;
  n : int;
  t : int;
  proposals : Value.t list;
  faults : (Pid.t * fault) list;
  mutation : string option;
}

let mutations = function
  | PL.Dex ->
    [
      ("p2-gt-t", "two-step threshold lowered to > t");
      ("p1-gt-2t", "one-step threshold lowered to the two-step one");
      ("swap-p1-p2", "P1 and P2 exchanged");
    ]
  | PL.Kuo_chen ->
    [ ("decide-low", "two-step decide threshold lowered to 2c > n - t") ]
  | PL.Hbft ->
    [
      ("support-zero", "orders accepted without any matching VAL support");
      ("spec-low", "speculative decide threshold lowered to n - 2t accepts");
    ]

let mutate name (pair : Pair.t) kind =
  let fb = pair.Pair.t in
  match (name, kind) with
  | "p2-gt-t", Prv m -> { pair with Pair.p2 = (fun s -> View_stats.count s m > fb) }
  | "p2-gt-t", Freq -> { pair with Pair.p2 = (fun s -> View_stats.margin s > fb) }
  | "p1-gt-2t", Prv m -> { pair with Pair.p1 = (fun s -> View_stats.count s m > 2 * fb) }
  | "p1-gt-2t", Freq -> { pair with Pair.p1 = (fun s -> View_stats.margin s > 2 * fb) }
  | "swap-p1-p2", _ -> { pair with Pair.p1 = pair.Pair.p2; Pair.p2 = pair.Pair.p1 }
  | _ -> invalid_arg (Printf.sprintf "Dex_model: unknown mutation %S" name)

let pair_of_scenario s =
  if List.length s.proposals <> s.n then
    invalid_arg "Dex_model: proposals length must equal n";
  let base =
    match s.kind with
    | Freq -> Pair.freq ~n:s.n ~t:s.t
    | Prv m -> Pair.privileged ~n:s.n ~t:s.t ~m
  in
  (* Dex mutations deform the condition pair itself; the other lanes carry
     their mutations in their native configs (see [lane_config]). *)
  match s.mutation with
  | Some name when s.lane = PL.Dex -> mutate name base s.kind
  | _ -> base

type msg = M_dex of DL.msg | M_kc of KL.msg | M_hbft of HL.msg

let pp_msg ppf = function
  | M_dex m -> DL.pp_msg ppf m
  | M_kc m -> KL.pp_msg ppf m
  | M_hbft m -> HL.pp_msg ppf m

let fault_at s p = List.assoc_opt p s.faults

(* Build the system through the lane contract: every lane provides
   instance / extra / equivocator, so one builder covers all three; only
   the embedding into the summed [msg] type differs. *)
let system_of (type m) (module L : PL.LANE with type msg = m) ~inject ~project s =
  let pair = pair_of_scenario s in
  let mutation = if s.lane = PL.Dex then None else s.mutation in
  let cfg = L.config ?mutation ~pair () in
  let emb i = Protocol.embed ~inject ~project i in
  let make_instance p =
    let proposal = List.nth s.proposals p in
    let correct () = emb (L.instance cfg ~me:p ~proposal) in
    match fault_at s p with
    | None -> correct ()
    | Some Silent -> Adversary.silent ()
    | Some (Crash_after budget) -> Adversary.crash_after_actions budget (correct ())
    | Some (Mute_towards victims) -> Adversary.mute_towards victims (correct ())
    | Some (Replay copies) -> Adversary.replayer ~copies (correct ())
    | Some (Equivocate { v1; v2; cut }) ->
      emb (L.equivocator cfg ~me:p ~split:(fun dst -> if dst < cut then v1 else v2))
    | Some (Churn_sched sched) ->
      let mode ~step =
        List.fold_left
          (fun acc (from, m) -> if step >= from then m else acc)
          Adversary.Churn_honest sched
      in
      Adversary.churn ~mode (correct ())
  in
  {
    Exec.n = s.n;
    make_instance;
    make_extra = (fun () -> List.map (fun (p, i) -> (p, emb i)) (L.extra cfg));
  }

let system s =
  match s.lane with
  | PL.Dex ->
    system_of
      (module DL)
      ~inject:(fun m -> M_dex m)
      ~project:(function M_dex m -> Some m | _ -> None)
      s
  | PL.Kuo_chen ->
    system_of
      (module KL)
      ~inject:(fun m -> M_kc m)
      ~project:(function M_kc m -> Some m | _ -> None)
      s
  | PL.Hbft ->
    system_of
      (module HL)
      ~inject:(fun m -> M_hbft m)
      ~project:(function M_hbft m -> Some m | _ -> None)
      s

let expectation s =
  let pair = pair_of_scenario s in
  let correct =
    List.filter (fun p -> fault_at s p = None) (Pid.all ~n:s.n)
  in
  let value_faithful =
    List.for_all (function _, Equivocate _ -> false | _ -> true) s.faults
  in
  let obligation =
    let mutation = if s.lane = PL.Dex then None else s.mutation in
    match s.lane with
    | PL.Dex -> fun ~f input -> Pair.obligation pair ~f input
    | PL.Kuo_chen ->
      let cfg = KL.config ?mutation ~pair () in
      fun ~f input -> KL.obligation cfg ~f input
    | PL.Hbft ->
      let cfg = HL.config ?mutation ~pair () in
      fun ~f input -> HL.obligation cfg ~f input
  in
  Oracles.expectation ~value_faithful ~t:s.t ~obligation
    ~input:(Input_vector.of_list s.proposals)
    ~correct ()

let check s summary = Oracles.check (expectation s) summary

(* Worst-case objective for {!Checker.search}: how badly the schedule hurts
   the expedited path. Every correct pid contributes a large constant when
   it missed the one-step lane (larger still when it never decided), plus
   its decision's causal depth as latency tie-break. All components are
   functions of the reached state — tags, decision presence and causal
   depth are determined by the per-receiver delivery sequences — so the
   score is fingerprint-invariant and the search's pruning stays exact.
   (The global [decision.step] index is deliberately not used: it differs
   between fingerprint-equal interleavings.) *)
let one_step_loss s (summary : Exec.summary) =
  let fast tag =
    match PL.provenance_of_tag tag with
    | None -> false
    | Some p -> (
      match s.lane with
      | PL.Dex -> DL.fast_path p
      | PL.Kuo_chen -> KL.fast_path p
      | PL.Hbft -> HL.fast_path p)
  in
  let correct = List.filter (fun p -> fault_at s p = None) (Pid.all ~n:s.n) in
  List.fold_left
    (fun acc p ->
      match summary.Exec.decisions.(p) with
      | Some d when fast d.Exec.tag -> acc + d.Exec.depth
      | Some d -> acc + 10_000 + d.Exec.depth
      | None -> acc + 20_000)
    0 correct

let trace s schedule = Exec.to_trace ~pp_msg (system s) schedule

(* Counterexample files: a line-oriented text format, one header per line
   then one schedule key per line. *)

let churn_mode_name = function
  | Adversary.Churn_honest -> "honest"
  | Adversary.Churn_mute -> "mute"
  | Adversary.Churn_equiv -> "equiv"

let churn_mode_of_name = function
  | "honest" -> Some Adversary.Churn_honest
  | "mute" -> Some Adversary.Churn_mute
  | "equiv" -> Some Adversary.Churn_equiv
  | _ -> None

let string_of_fault = function
  | Silent -> "silent"
  | Crash_after k -> Printf.sprintf "crash:%d" k
  | Mute_towards victims ->
    Printf.sprintf "mute:%s" (String.concat "," (List.map string_of_int victims))
  | Replay copies -> Printf.sprintf "replay:%d" copies
  | Equivocate { v1; v2; cut } -> Printf.sprintf "equiv:%d:%d:%d" v1 v2 cut
  | Churn_sched sched ->
    Printf.sprintf "churn:%s"
      (String.concat ","
         (List.map (fun (s, m) -> Printf.sprintf "%d=%s" s (churn_mode_name m)) sched))

let fault_of_string str =
  match String.split_on_char ':' str with
  | [ "silent" ] -> Silent
  | [ "crash"; k ] -> Crash_after (int_of_string k)
  | [ "mute"; victims ] ->
    Mute_towards
      (List.filter_map int_of_string_opt (String.split_on_char ',' victims))
  | [ "replay"; c ] -> Replay (int_of_string c)
  | [ "equiv"; v1; v2; cut ] ->
    Equivocate { v1 = int_of_string v1; v2 = int_of_string v2; cut = int_of_string cut }
  | [ "churn"; sched ] ->
    Churn_sched
      (List.map
         (fun entry ->
           match String.split_on_char '=' entry with
           | [ s; m ] -> (
             match (int_of_string_opt s, churn_mode_of_name m) with
             | Some s, Some m -> (s, m)
             | _ -> failwith (Printf.sprintf "dex-mc counterexample: bad churn entry %S" entry))
           | _ -> failwith (Printf.sprintf "dex-mc counterexample: bad churn entry %S" entry))
         (String.split_on_char ',' sched))
  | _ -> failwith (Printf.sprintf "dex-mc counterexample: bad fault %S" str)

let save_counterexample ~file s schedule violation =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "dex-mc counterexample v1\n";
      p "protocol %s\n" (PL.id_to_string s.lane);
      (match s.kind with
      | Freq -> p "pair freq\n"
      | Prv m -> p "pair prv:%d\n" m);
      p "n %d\n" s.n;
      p "t %d\n" s.t;
      (match s.mutation with None -> () | Some m -> p "mutation %s\n" m);
      p "proposals %s\n" (String.concat " " (List.map string_of_int s.proposals));
      List.iter (fun (pid, f) -> p "fault %d %s\n" pid (string_of_fault f)) s.faults;
      p "violation %s\n" (Format.asprintf "%a" Oracles.pp_violation violation);
      p "schedule\n";
      List.iter (fun k -> p "%s\n" (Exec.key_to_string k)) schedule)

let load_counterexample ~file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      let lines = List.rev !lines in
      let fail fmt = Printf.ksprintf failwith ("dex-mc counterexample: " ^^ fmt) in
      (match lines with
      | "dex-mc counterexample v1" :: _ -> ()
      | _ -> fail "bad header");
      let lane = ref PL.Dex
      and kind = ref None
      and n = ref None
      and t = ref None
      and mutation = ref None
      and proposals = ref []
      and faults = ref []
      and schedule = ref []
      and in_schedule = ref false in
      List.iteri
        (fun i line ->
          if i = 0 || String.trim line = "" then ()
          else if !in_schedule then begin
            match Exec.key_of_string line with
            | Some k -> schedule := k :: !schedule
            | None -> fail "bad schedule key %S" line
          end
          else
            match String.split_on_char ' ' line with
            | [ "schedule" ] -> in_schedule := true
            | [ "protocol"; p ] -> begin
              match PL.id_of_string p with
              | Some id -> lane := id
              | None -> fail "bad protocol %S" p
            end
            | [ "pair"; "freq" ] -> kind := Some Freq
            | [ "pair"; p ] -> begin
              match String.split_on_char ':' p with
              | [ "prv"; m ] -> kind := Some (Prv (int_of_string m))
              | _ -> fail "bad pair %S" p
            end
            | [ "n"; v ] -> n := int_of_string_opt v
            | [ "t"; v ] -> t := int_of_string_opt v
            | [ "mutation"; m ] -> mutation := Some m
            | "proposals" :: vs ->
              proposals := List.filter_map int_of_string_opt vs
            | [ "fault"; pid; f ] ->
              faults := (int_of_string pid, fault_of_string f) :: !faults
            | "violation" :: _ -> ()
            | _ -> fail "bad line %S" line)
        lines;
      match (!kind, !n, !t) with
      | Some kind, Some n, Some t ->
        ( {
            lane = !lane;
            kind;
            n;
            t;
            proposals = !proposals;
            faults = List.rev !faults;
            mutation = !mutation;
          },
          List.rev !schedule )
      | _ -> fail "missing pair/n/t header")

let enumerate_inputs s universe =
  List.map
    (fun iv -> { s with proposals = Input_vector.to_list iv })
    (Input_vector.enumerate ~n:s.n ~values:universe)
