(** Schedule-driven protocol execution.

    The model checker's replacement for {!Dex_net.Runner}: instead of a
    virtual clock and latency distributions, the execution is driven by an
    explicit {e schedule} — at every step the controller picks which
    in-flight message to deliver next. Virtual time is irrelevant in the
    asynchronous model (processes never read it); the set of reachable
    protocol states is exactly the set of delivery orders, which is what the
    checker enumerates.

    Executions are replayable: instances are deterministic state machines,
    so a schedule prefix fully determines the global state. The checker
    backtracks by replaying prefixes from scratch rather than snapshotting
    opaque instance closures. *)

open Dex_vector
open Dex_net

type kind = Message | Timer

type key = { src : Pid.t; dst : Pid.t; kind : kind; chan : int }
(** Schedule-independent identity of an in-flight event: the [chan]-th
    message (0-based) sent on the FIFO channel [(src, dst, kind)]. Because
    instances are deterministic, equivalent schedules produce the same keyed
    messages even when global emission order differs — keys are what
    schedules, sleep sets and fingerprints are made of. Timers are modelled
    as self-addressed events on the [Timer] channel (their delay is just
    another adversary-chosen delivery time). *)

val pp_key : Format.formatter -> key -> unit

val key_to_string : key -> string
(** ["src>dst:M|T:chan"] — the counterexample-file syntax. *)

val key_of_string : string -> key option

type decision = {
  value : Value.t;
  tag : string;
  depth : int;  (** causal communication-step count, as in {!Runner} *)
  step : int;  (** schedule step index at which the decision fired; 0 when
                   decided in [start] *)
}

type delivery = { step : int; key : key; depth : int }
(** One executed schedule step: at step [step] (1-based) the event [key]
    carrying causal depth [depth] was delivered. *)

type 'msg system = {
  n : int;  (** protocol processes, pids [0 .. n-1] *)
  make_instance : Pid.t -> 'msg Protocol.instance;
  make_extra : unit -> (Pid.t * 'msg Protocol.instance) list;
      (** auxiliary nodes (e.g. the UC oracle); rebuilt fresh on every
          replay, like the instances *)
}
(** A replayable system description. Both constructors must return {e
    fresh} state on every call — the executor re-instantiates the whole
    system for each explored schedule. *)

type 'msg t

val create : 'msg system -> 'msg t
(** Instantiate every process and run its [start] hook (pids [0 .. n-1] in
    order, then extras in pid order). Start emissions carry causal depth 1;
    sends to pids with no instance are discarded. *)

val inflight : 'msg t -> key list
(** Keys of the deliverable events, oldest emission first. The checker's
    branch point: delivering index [k] costs [k] delay units under
    delay-bounded exploration (index 0 is the canonical FIFO choice). *)

val deliver_nth : 'msg t -> int -> unit
(** Deliver the [k]-th oldest in-flight event and execute the receiver's
    handler. @raise Invalid_argument when the index is out of range. *)

val deliver_key : 'msg t -> key -> bool
(** Deliver the event with this key if it is currently in flight; [false]
    (and no state change) otherwise. Replaying shrunk schedules uses the
    skip-if-absent semantics. *)

val run_fifo : ?max_steps:int -> 'msg t -> bool
(** Deliver oldest-first until quiescence; [false] when [max_steps]
    (default 100_000) was reached first. *)

val quiescent : 'msg t -> bool

val steps : 'msg t -> int
(** Number of deliveries executed so far. *)

val fingerprint : 'msg t -> string
(** Canonical digest of the per-receiver delivered-key sequences. Two
    schedules with equal fingerprints lead to identical global protocol
    states (deliveries at distinct receivers commute; each receiver's state
    is a function of its own delivery sequence), so the checker prunes
    revisits. *)

type summary = {
  sys_n : int;
  decisions : decision option array;  (** index = pid, length [sys_n] *)
  late : (Pid.t * decision) list;  (** decide actions after having decided *)
  deliveries : delivery list;  (** executed schedule, oldest first *)
  complete : bool;  (** the run reached quiescence (nothing in flight) *)
}

val summary : 'msg t -> summary
(** Oracle-facing view of the execution — plain data, no ['msg]. *)

val replay : ?max_steps:int -> ?loose:bool -> 'msg system -> key list -> 'msg t
(** Fresh instantiation, then deliver the listed events in order. With
    [loose = false] (default) a key that is not in flight raises
    [Invalid_argument]; with [loose = true] it is skipped — shrinking
    deletes schedule entries and replays the rest. The FIFO tail to
    quiescence is {e not} run; callers append {!run_fifo} when they want a
    complete execution. *)

val to_trace : ?pp_msg:(Format.formatter -> 'msg -> unit) -> 'msg system -> key list -> Dex_sim.Trace.t
(** Replay (loosely, with FIFO completion) and render the execution as a
    {!Dex_sim.Trace.t} — time = schedule step index, labels in the runner's
    format — so shrunk counterexamples print with the standard trace
    tooling. *)
