(** Protocol lanes instantiated for model checking.

    Builds replayable {!Exec.system}s from declarative scenarios — a
    protocol lane ({!Dex_core.Protocol_lane.id}), a condition pair, an
    input vector, a fault assignment, and optionally a {e mutation} that
    deliberately breaks the lane so the checker has a planted bug to find.
    The underlying consensus is {!Dex_underlying.Uc_oracle} (the paper's
    abstraction taken literally), so explored state spaces stay small and
    every run terminates.

    Note the dimension constraints: [P_freq] needs [n > 6t] (so n=6, t=1 is
    {e not} constructible — use n=7), [P_prv] needs [n > 5t]. *)

open Dex_vector
open Dex_net
open Dex_condition

type pair_kind = Freq | Prv of Value.t

type fault =
  | Silent
  | Crash_after of int  (** stop after emitting this many actions *)
  | Mute_towards of Pid.t list
  | Replay of int  (** send every message this many times *)
  | Equivocate of { v1 : Value.t; v2 : Value.t; cut : int }
      (** proposal [v1] to pids [< cut], [v2] to the rest, on both lanes *)
  | Churn_sched of (int * Adversary.churn_mode) list
      (** dynamic churn: from local step [s_k] on, emissions run in
          [mode_k] ({!Adversary.churn}, the Bracha–Toueg
          [BecomeByzantine]/[BecomeHonest] transitions) — the same adversary
          vocabulary the live chaos lane flips at runtime, step-indexed here
          so exploration is deterministic. Entries apply in list order;
          before the first entry the process is honest. Value-faithful: it
          only suppresses or stale-replays its own authentic messages. *)

val fault_of_choice : Adversary.choice -> fault option
(** Embed a generic enumerable adversary choice; [None] for
    [Choice_correct]. *)

type scenario = {
  lane : Dex_core.Protocol_lane.id;
      (** which protocol runs: the dex pair, the Kuo–Chen two-step lane,
          or the speculative hBFT-style lane. The pair supplies [n], [t]
          and (for dex) the expedited conditions; the non-dex lanes only
          need its dimensions. *)
  kind : pair_kind;
  n : int;
  t : int;
  proposals : Value.t list;  (** length [n]; a faulty slot holds the value
                                 the process would have proposed *)
  faults : (Pid.t * fault) list;
  mutation : string option;  (** a name from {!mutations} *)
}

val mutations : Dex_core.Protocol_lane.id -> (string * string) list
(** [(name, description)] of each lane's supported mutations. For dex they
    deform the condition pair:
    - ["p2-gt-t"] — the two-step threshold lowered to [> t] (the paper
      requires [> 2t] for P_prv, margin [> 2t] for P_freq): two-step
      decisions fire on views where the underlying consensus can settle on
      a different value — an agreement bug. A mutated pair fails
      {!Oracles.legal_pair}.
    - ["p1-gt-2t"] — the one-step threshold lowered to the two-step one.
    - ["swap-p1-p2"] — P1 and P2 exchanged.
    The other lanes carry mutations in their own configs (the pair stays
    legal): ["decide-low"] for two-step, ["support-zero"] and ["spec-low"]
    for hbft. *)

val pair_of_scenario : scenario -> Pair.t
(** The (possibly mutated, dex lane only) pair.
    @raise Pair.Assumption_violated on dimension mismatch,
    [Invalid_argument] on an unknown mutation name or a proposals list of
    the wrong length. *)

type msg
(** Lane-over-oracle message type, summed over the three lanes (abstract —
    schedules only name events by {!Exec.key}). *)

val pp_msg : Format.formatter -> msg -> unit

val system : scenario -> msg Exec.system
(** Fresh-instantiating system: correct slots run the scenario lane's
    [instance], faulty slots the corresponding adversary (equivocators use
    the lane's own [equivocator]), plus the UC-oracle node at pid [n]. *)

val expectation : scenario -> Oracles.expectation
(** Oracle inputs derived from the scenario ([value_faithful] is false iff
    an [Equivocate] fault is present). *)

val check : scenario -> Exec.summary -> Oracles.violation option
(** [Oracles.check (expectation s)]. *)

val one_step_loss : scenario -> Exec.summary -> int
(** Worst-case objective for {!Checker.search}: per correct pid, [10_000]
    if its decision missed the lane's fast path ([20_000] if it never
    decided), plus the decision's causal depth as a latency tie-break.
    Fingerprint-invariant (reads tags and causal depths, never the global
    schedule index), as the search's pruning requires. *)

val trace : scenario -> Exec.key list -> Dex_sim.Trace.t
(** Replay a schedule (loose + FIFO completion) into a printable trace. *)

(** {2 Counterexample files}

    A violating scenario + shrunk schedule serializes to a small text file
    that [bin/dex_trace.ml --replay] and tests reload for deterministic
    re-execution. *)

val save_counterexample :
  file:string -> scenario -> Exec.key list -> Oracles.violation -> unit

val load_counterexample : file:string -> scenario * Exec.key list
(** @raise Failure on a malformed file. *)

val enumerate_inputs : scenario -> Value.t list -> scenario list
(** The scenario with [proposals] replaced by every input vector over the
    given universe — the outer loop of exhaustive checking. *)
