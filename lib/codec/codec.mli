(** Typed binary codecs for wire transport.

    Self-describing enough to be robust (length-checked, tag-checked) but
    deliberately minimal: varint integers, tag-byte variants, length-prefixed
    sequences. Every protocol message type in the repository has a codec
    built from these combinators, giving the TCP transport a real wire
    format instead of [Marshal] (see [Transport.Tcp_codec]).

    Decoding never trusts input: malformed bytes raise {!Decode_error},
    which transports catch and treat as a Byzantine peer. *)

exception Decode_error of string

type reader
(** Mutable cursor over an input string. *)

type 'a t = { write : Buffer.t -> 'a -> unit; read : reader -> 'a }

(** {2 Running codecs} *)

val encode : 'a t -> 'a -> string

val decode : 'a t -> string -> ('a, string) result
(** Decodes and checks the input is fully consumed. *)

val decode_exn : 'a t -> string -> 'a
(** @raise Decode_error on malformed or trailing input. *)

(** {2 Primitives} *)

val int : int t
(** Zigzag varint; any OCaml int, compact for small magnitudes. *)

val bool : bool t

val float : float t
(** IEEE-754 bits, 8 bytes. *)

val string : string t
(** Varint length + bytes. Length capped at 16 MiB to bound allocation from
    hostile input. *)

val unit : unit t

(** {2 Combinators} *)

val option : 'a t -> 'a option t

val list : 'a t -> 'a list t
(** Varint count + items; count capped at 1M. *)

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val conv : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [conv to_wire of_wire wire_codec]: encode through [to_wire], decode
    through [of_wire]. *)

val variant : name:string -> ('a -> int * (Buffer.t -> unit)) -> (int -> reader -> 'a) -> 'a t
(** [variant ~name tag_of read_case]: [tag_of v] gives the case tag and a
    payload writer; [read_case tag r] rebuilds the value.
    [read_case] should raise {!Decode_error} (via {!bad_tag}) on unknown
    tags. *)

val bad_tag : name:string -> int -> 'a
(** @raise Decode_error reporting an unknown variant tag. *)

(** {2 Framing} *)

module Frame : sig
  val write : Buffer.t -> 'a t -> 'a -> unit
  (** 4-byte big-endian length prefix + payload. *)

  val to_string : 'a t -> 'a -> string
  (** One complete frame as a string — the unit an event-driven connection
      ({!Dex_runtime.Reactor.Conn.send}) enqueues. *)

  val to_channel : out_channel -> 'a t -> 'a -> unit
  (** Write one frame and flush. *)

  val to_channel_buffered : out_channel -> 'a t -> 'a -> unit
  (** Write one frame without flushing — for senders that coalesce several
      frames per syscall and flush once per wave. *)

  val from_channel : in_channel -> 'a t -> 'a
  (** Blocking read of one frame.
      @raise End_of_file on a closed channel.
      @raise Decode_error on a malformed frame (incl. frames over 64 MiB). *)

  (** Incremental frame reassembly for nonblocking transports: feed byte
      chunks as they arrive, receive whole decoded frames back. *)
  module Reader : sig
    type 'a reader

    val create : 'a t -> 'a reader

    val feed : 'a reader -> bytes -> int -> 'a list
    (** [feed r buf len] appends [buf[0..len)] to the pending bytes and
        returns every frame completed by them, in arrival order (possibly
        none). The input buffer is copied and may be reused immediately.
        @raise Decode_error on a malformed length prefix or payload — the
        stream is unrecoverable past this point and the connection should
        be torn down. *)

    val pending : 'a reader -> int
    (** Buffered bytes not yet forming a complete frame. *)
  end
end
