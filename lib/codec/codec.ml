exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

type reader = { data : string; mutable pos : int }

type 'a t = { write : Buffer.t -> 'a -> unit; read : reader -> 'a }

let max_string_len = 16 * 1024 * 1024

let max_list_len = 1_000_000

let byte r =
  if r.pos >= String.length r.data then fail "unexpected end of input at %d" r.pos;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let take r len =
  if len < 0 || r.pos + len > String.length r.data then
    fail "truncated input: need %d bytes at %d" len r.pos;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

(* Unsigned LEB128. *)
let write_uvarint buf n =
  let rec go n =
    let low = Int64.to_int (Int64.logand n 0x7FL) in
    let rest = Int64.shift_right_logical n 7 in
    if rest = 0L then Buffer.add_char buf (Char.chr low)
    else begin
      Buffer.add_char buf (Char.chr (low lor 0x80));
      go rest
    end
  in
  go n

let read_uvarint r =
  let rec go shift acc =
    if shift > 63 then fail "varint too long";
    let b = byte r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

(* Zigzag mapping makes small negative ints compact too. *)
let zigzag n = Int64.logxor (Int64.shift_left n 1) (Int64.shift_right n 63)

let unzigzag n =
  Int64.logxor (Int64.shift_right_logical n 1) (Int64.neg (Int64.logand n 1L))

let int =
  {
    write = (fun buf n -> write_uvarint buf (zigzag (Int64.of_int n)));
    read = (fun r -> Int64.to_int (unzigzag (read_uvarint r)));
  }

let bool =
  {
    write = (fun buf b -> Buffer.add_char buf (if b then '\001' else '\000'));
    read =
      (fun r ->
        match byte r with 0 -> false | 1 -> true | b -> fail "bad bool byte %d" b);
  }

let float =
  {
    write = (fun buf x -> Buffer.add_int64_be buf (Int64.bits_of_float x));
    read =
      (fun r ->
        let s = take r 8 in
        Int64.float_of_bits (String.get_int64_be s 0));
  }

let string =
  {
    write =
      (fun buf s ->
        write_uvarint buf (Int64.of_int (String.length s));
        Buffer.add_string buf s);
    read =
      (fun r ->
        let len = Int64.to_int (read_uvarint r) in
        if len > max_string_len then fail "string too long: %d" len;
        take r len);
  }

let unit = { write = (fun _ () -> ()); read = (fun _ -> ()) }

let option inner =
  {
    write =
      (fun buf -> function
        | None -> Buffer.add_char buf '\000'
        | Some v ->
          Buffer.add_char buf '\001';
          inner.write buf v);
    read =
      (fun r ->
        match byte r with
        | 0 -> None
        | 1 -> Some (inner.read r)
        | b -> fail "bad option tag %d" b);
  }

let list inner =
  {
    write =
      (fun buf items ->
        write_uvarint buf (Int64.of_int (List.length items));
        List.iter (inner.write buf) items);
    read =
      (fun r ->
        let count = Int64.to_int (read_uvarint r) in
        if count < 0 || count > max_list_len then fail "list too long: %d" count;
        List.init count (fun _ -> inner.read r));
  }

let pair ca cb =
  {
    write =
      (fun buf (a, b) ->
        ca.write buf a;
        cb.write buf b);
    read =
      (fun r ->
        let a = ca.read r in
        let b = cb.read r in
        (a, b));
  }

let triple ca cb cc =
  {
    write =
      (fun buf (a, b, c) ->
        ca.write buf a;
        cb.write buf b;
        cc.write buf c);
    read =
      (fun r ->
        let a = ca.read r in
        let b = cb.read r in
        let c = cc.read r in
        (a, b, c));
  }

let conv to_wire of_wire wire =
  {
    write = (fun buf v -> wire.write buf (to_wire v));
    read = (fun r -> of_wire (wire.read r));
  }

let bad_tag ~name tag = fail "unknown tag %d for %s" tag name

let variant ~name:_ tag_of read_case =
  {
    write =
      (fun buf v ->
        let tag, write_payload = tag_of v in
        int.write buf tag;
        write_payload buf);
    read =
      (fun r ->
        let tag = int.read r in
        read_case tag r);
  }

let encode codec v =
  let buf = Buffer.create 64 in
  codec.write buf v;
  Buffer.contents buf

let decode_exn codec s =
  let r = { data = s; pos = 0 } in
  let v = codec.read r in
  if r.pos <> String.length s then fail "trailing bytes: %d unread" (String.length s - r.pos);
  v

let decode codec s =
  match decode_exn codec s with
  | v -> Ok v
  | exception Decode_error m -> Error m

module Frame = struct
  let max_frame = 64 * 1024 * 1024

  let write buf codec v =
    let payload = encode codec v in
    let len = String.length payload in
    Buffer.add_int32_be buf (Int32.of_int len);
    Buffer.add_string buf payload

  let to_string codec v =
    let buf = Buffer.create 128 in
    write buf codec v;
    Buffer.contents buf

  let to_channel_buffered oc codec v =
    let buf = Buffer.create 128 in
    write buf codec v;
    output_string oc (Buffer.contents buf)

  let to_channel oc codec v =
    to_channel_buffered oc codec v;
    flush oc

  let from_channel ic codec =
    let header = really_input_string ic 4 in
    let len = Int32.to_int (String.get_int32_be header 0) in
    if len < 0 || len > max_frame then fail "bad frame length %d" len;
    let payload = really_input_string ic len in
    decode_exn codec payload

  (* Incremental frame reassembly for nonblocking transports: bytes arrive
     in arbitrary chunks, frames come out whole. Pending bytes accumulate in
     a [Buffer]; a consumption cursor avoids re-copying on every feed, and
     the buffer is compacted once the consumed prefix dominates. *)
  module Reader = struct
    type 'a reader = { codec : 'a t; buf : Buffer.t; mutable pos : int }

    let create codec = { codec; buf = Buffer.create 4096; pos = 0 }

    let pending t = Buffer.length t.buf - t.pos

    let compact t =
      if t.pos > 0 && (t.pos = Buffer.length t.buf || t.pos > 65536) then begin
        let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
        Buffer.clear t.buf;
        Buffer.add_string t.buf rest;
        t.pos <- 0
      end

    let feed t bytes len =
      Buffer.add_subbytes t.buf bytes 0 len;
      let out = ref [] in
      let continue = ref true in
      while !continue do
        let avail = Buffer.length t.buf - t.pos in
        if avail < 4 then continue := false
        else begin
          let frame_len = Int32.to_int (String.get_int32_be (Buffer.sub t.buf t.pos 4) 0) in
          if frame_len < 0 || frame_len > max_frame then fail "bad frame length %d" frame_len;
          if avail < 4 + frame_len then continue := false
          else begin
            let payload = Buffer.sub t.buf (t.pos + 4) frame_len in
            t.pos <- t.pos + 4 + frame_len;
            out := decode_exn t.codec payload :: !out
          end
        end
      done;
      compact t;
      List.rev !out
  end
end
