(* Replicated key-value store — the workload the paper's introduction
   motivates: "the replicated servers need to agree on the processing order
   of the update requests ... if a client broadcasts its request to all
   servers and there is no contention, then all servers propose the same
   request".

   Seven replicas order a stream of SET commands through a replicated log of
   DEX instances. Most slots are uncontended (all replicas propose the same
   client command — these commit after one step); a few slots are contended
   (two clients race — the log still converges, through the two-step or
   underlying path). At the end every replica has an identical store.

   The store semantics are the real ones: Dex_service.State_machine, the
   same apply/snapshot/digest KV machine the networked service
   (bin/dex_server) replicates. Here the log orders small command ids and a
   table maps them to commands; the service lane orders batch digests — the
   state machine underneath is shared.

     dune exec examples/state_machine.exe *)

open Dex_condition
open Dex_net
open Dex_underlying
open Dex_smr
module Sm = Dex_service.State_machine

module Log = Replicated_log.Make (Dex_core.Dex.Lane (Uc_oracle))

(* Command id c = SET key[c mod 3] := 10*c, as a real service command. *)
let command_of_id c = Sm.Set ([| "x"; "y"; "z" |].(c mod 3), 10 * c)

let n = 7

let t = 1

let slots = 12

(* Two clients; slots 3, 7 and 11 are contended (the clients race), others
   are uncontended. A replica's proposal for a contended slot depends on
   which client's message reached it first — modelled by replica parity. *)
let proposal_for ~replica ~slot =
  let contended = slot mod 4 = 3 in
  if contended then if replica mod 2 = 0 then 100 + slot else 200 + slot
  else 100 + slot

let () =
  print_endline "== Replicated key-value store over a DEX log ==";
  Printf.printf "%d replicas, %d slots, contention on slots 3, 7, 11\n\n" n slots;

  let pair = Pair.freq ~n ~t in
  let cfg = Log.config ~window:4 ~pair:(fun _ -> pair) ~slots ~n ~t () in

  (* Each replica applies committed commands to its own state machine. *)
  let machines = Array.init n (fun _ -> Sm.create ()) in
  let logs = Array.make n [] in
  let make replica =
    Log.replica cfg ~me:replica
      ~propose:(fun ~slot -> proposal_for ~replica ~slot)
      ~on_commit:(fun ~slot ~provenance:_ command ->
        logs.(replica) <- (slot, command) :: logs.(replica);
        ignore (Sm.apply machines.(replica) (command_of_id command)))
  in
  let result =
    Runner.run
      (Runner.config ~discipline:(Discipline.uniform ~lo:0.5 ~hi:1.5) ~seed:42
         ~extra:(Log.extra cfg) ~n make)
  in
  ignore result;

  print_endline "committed log (replica 0):";
  List.iter
    (fun (slot, command) ->
      Printf.printf "  slot %2d: %s %s\n" slot
        (Format.asprintf "%a" Sm.pp_command (command_of_id command))
        (if slot mod 4 = 3 then "(contended)" else ""))
    (List.rev logs.(0));

  (* Verify replica convergence via the state machine's own digest. *)
  let reference = Sm.digest machines.(0) in
  let all_equal = Array.for_all (fun m -> Sm.digest m = reference) machines in
  Printf.printf "\nfinal store (all replicas):";
  List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) (Sm.snapshot machines.(0));
  Printf.printf "\nreplicas converged: %b (state digest %x)\n" all_equal reference;
  let identical_logs =
    Array.for_all (fun l -> List.rev l = List.rev logs.(0)) logs
  in
  Printf.printf "identical logs on all replicas: %b\n" identical_logs
