(* dex_mc: bounded model checking of DEX schedules.

   Drives lib/mc: systematic (delay-bounded DFS) exploration of message
   delivery orders and adversary choices, with the paper's properties as
   executable oracles, plus a seeded-mutation mode that plants a broken
   condition pair, finds a violating schedule, shrinks it, and checks the
   shrunk counterexample replays deterministically.

   Usage:
     dune exec bin/dex_mc.exe -- --smoke
     dune exec bin/dex_mc.exe                               # acceptance sweep
     dune exec bin/dex_mc.exe -- --pair prv --n 6 -t 1 --budget 1
     dune exec bin/dex_mc.exe -- --mutate p2-gt-t --pair prv --n 6 -t 1 --cex cex.txt
     dune exec bin/dex_mc.exe -- --replay cex.txt
*)

open Dex_vector
open Dex_mcheck
module PL = Dex_core.Protocol_lane

type options = {
  mutable protocol : string;
  mutable smoke : bool;
  mutable mutate : string option;
  mutable worst_case : bool;
  mutable plan_out : string option;
  mutable replay : string option;
  mutable pair : string;
  mutable n : int;
  mutable t : int;
  mutable m : Value.t;
  mutable budget : int;
  mutable width : int;
  mutable max_schedules : int;
  mutable max_steps : int;
  mutable max_scenarios : int;
  mutable seed : int;
  mutable samples : int;
  mutable cex : string option;
  mutable input : string option;
  mutable faults : bool;
}

let options =
  {
    protocol = "dex";
    smoke = false;
    mutate = None;
    worst_case = false;
    plan_out = None;
    replay = None;
    pair = "";
    n = 0;
    t = -1;
    m = 1;
    budget = 2;
    width = 8;
    max_schedules = 200_000;
    max_steps = 10_000;
    max_scenarios = 0;
    seed = 7;
    samples = 50_000;
    cex = None;
    input = None;
    faults = true;
  }

let usage () =
  prerr_endline
    "dex_mc [--protocol dex|two-step|hbft] [--smoke] [--mutate NAME] [--worst-case]\n\
    \       [--plan-out FILE] [--replay FILE] [--pair freq|prv] [--n N] [-t T]\n\
    \       [--m V] [--budget D] [--width W] [--max-schedules K] [--max-steps K]\n\
    \       [--max-scenarios K] [--seed S] [--samples K] [--cex FILE]\n\
    \       [--input v,v,..] [--no-faults]";
  exit 2

let parse_args () =
  let rec go = function
    | "--protocol" :: v :: rest ->
      options.protocol <- v;
      go rest
    | "--smoke" :: rest ->
      options.smoke <- true;
      go rest
    | "--mutate" :: v :: rest ->
      options.mutate <- Some v;
      go rest
    | "--worst-case" :: rest ->
      options.worst_case <- true;
      go rest
    | "--plan-out" :: v :: rest ->
      options.plan_out <- Some v;
      go rest
    | "--replay" :: v :: rest ->
      options.replay <- Some v;
      go rest
    | "--pair" :: v :: rest ->
      options.pair <- v;
      go rest
    | "--n" :: v :: rest | "-n" :: v :: rest ->
      options.n <- int_of_string v;
      go rest
    | "-t" :: v :: rest ->
      options.t <- int_of_string v;
      go rest
    | "--m" :: v :: rest ->
      options.m <- int_of_string v;
      go rest
    | "--budget" :: v :: rest ->
      options.budget <- int_of_string v;
      go rest
    | "--width" :: v :: rest ->
      options.width <- int_of_string v;
      go rest
    | "--max-schedules" :: v :: rest ->
      options.max_schedules <- int_of_string v;
      go rest
    | "--max-steps" :: v :: rest ->
      options.max_steps <- int_of_string v;
      go rest
    | "--max-scenarios" :: v :: rest ->
      options.max_scenarios <- int_of_string v;
      go rest
    | "--seed" :: v :: rest ->
      options.seed <- int_of_string v;
      go rest
    | "--samples" :: v :: rest ->
      options.samples <- int_of_string v;
      go rest
    | "--cex" :: v :: rest ->
      options.cex <- Some v;
      go rest
    | "--input" :: v :: rest ->
      options.input <- Some v;
      go rest
    | "--no-faults" :: rest ->
      options.faults <- false;
      go rest
    | [] -> ()
    | x :: _ ->
      Printf.eprintf "unknown argument %s\n" x;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let lane () =
  match PL.id_of_string options.protocol with
  | Some id -> id
  | None ->
    Printf.eprintf "unknown protocol %s (dex | two-step | hbft)\n" options.protocol;
    usage ()

let bounds () =
  {
    Checker.delay_budget = options.budget;
    branch_width = options.width;
    max_schedules = options.max_schedules;
    max_steps = options.max_steps;
  }

let kind_of_pair = function
  | "freq" -> Dex_model.Freq
  | "prv" -> Dex_model.Prv options.m
  | other ->
    Printf.eprintf "unknown pair %s (freq | prv)\n" other;
    usage ()

let pp_kind ppf = function
  | Dex_model.Freq -> Format.pp_print_string ppf "P_freq"
  | Dex_model.Prv m -> Format.fprintf ppf "P_prv(m=%d)" m

let base_scenario kind ~n ~t =
  {
    Dex_model.lane = lane ();
    kind;
    n;
    t;
    proposals = List.init n (fun _ -> 0);
    faults = [];
    mutation = None;
  }

(* One faulty slot is placed at pid 0 — processes are symmetric, so this is
   a sound symmetry reduction over fault placement. *)
let fault_assignments ~n ~t =
  if t = 0 || not options.faults then [ [] ]
  else
    [
      [];
      [ (0, Dex_model.Silent) ];
      [ (0, Dex_model.Crash_after 1) ];
      [ (0, Dex_model.Crash_after 3) ];
      [ (0, Dex_model.Mute_towards [ 1 ]) ];
      [ (0, Dex_model.Replay 2) ];
      [ (0, Dex_model.Equivocate { v1 = 0; v2 = 1; cut = n / 2 }) ];
    ]

(* Processes 1..n-1 run identical code and the faulty slot is pinned at
   pid 0, so proposal vectors that permute pids 1..n-1 yield isomorphic
   systems. For t >= 1 we enumerate representatives (v0, #ones among the
   rest): 2n vectors instead of 2^n. t = 0 keeps the full enumeration —
   it is cheap and is the exhaustive acceptance target. *)
let inputs_for base ~n ~t =
  if t = 0 then Dex_model.enumerate_inputs base [ 0; 1 ]
  else
    List.concat_map
      (fun v0 ->
        List.init n (fun ones ->
            {
              base with
              Dex_model.proposals =
                (v0 :: List.init (n - 1) (fun i -> if i < ones then 1 else 0));
            }))
      [ 0; 1 ]

let scenarios_for kind ~n ~t =
  let base = base_scenario kind ~n ~t in
  let with_inputs = inputs_for base ~n ~t in
  let all =
    List.concat_map
      (fun s ->
        List.map (fun faults -> { s with Dex_model.faults }) (fault_assignments ~n ~t))
      with_inputs
  in
  match options.max_scenarios with
  | 0 -> all
  | cap -> List.filteri (fun i _ -> i < cap) all

(* Returns (ok, all_exhausted). *)
let sweep ~label scenarios =
  let bounds = bounds () in
  let schedules = ref 0 and transitions = ref 0 and exhausted = ref true in
  let fp_prunes = ref 0 and sleep_prunes = ref 0 in
  let violation = ref None in
  List.iter
    (fun s ->
      if !violation = None then begin
        let outcome =
          Checker.explore ~sys:(Dex_model.system s) ~bounds
            ~check:(fun sum -> Dex_model.check s sum)
            ()
        in
        schedules := !schedules + outcome.Checker.stats.Checker.schedules;
        transitions := !transitions + outcome.Checker.stats.Checker.transitions;
        fp_prunes := !fp_prunes + outcome.Checker.stats.Checker.fp_prunes;
        sleep_prunes := !sleep_prunes + outcome.Checker.stats.Checker.sleep_prunes;
        if not outcome.Checker.stats.Checker.exhausted then exhausted := false;
        match outcome.Checker.violation with
        | Some (v, sched) -> violation := Some (s, v, sched)
        | None -> ()
      end)
    scenarios;
  match !violation with
  | Some (s, v, sched) ->
    Printf.printf "%-28s FAIL: %s\n" label (Format.asprintf "%a" Oracles.pp_violation v);
    Printf.printf "  scenario: proposals=[%s] faults=%d mutation=%s\n"
      (String.concat ";" (List.map string_of_int s.Dex_model.proposals))
      (List.length s.Dex_model.faults)
      (Option.value ~default:"none" s.Dex_model.mutation);
    Printf.printf "  schedule: %s\n"
      (String.concat " " (List.map Exec.key_to_string sched));
    (false, false)
  | None ->
    Printf.printf
      "%-28s ok: %d scenarios, %d schedules, %d transitions, %d+%d pruned%s\n" label
      (List.length scenarios) !schedules !transitions !fp_prunes !sleep_prunes
      (if !exhausted then ", exhaustive" else ", bounded");
    (true, !exhausted)

let find_mutant_counterexample ?(faults = []) ~mutation ~kind ~n ~t ~proposals () =
  let scenario =
    {
      (base_scenario kind ~n ~t) with
      Dex_model.proposals;
      faults;
      mutation = Some mutation;
    }
  in
  (* A mutated dex pair must fail the legality checker — the static oracle.
     Non-dex mutations live in the lane's own config; their pair stays
     legal and only the dynamic oracles can catch them. *)
  (if lane () = PL.Dex then
     let universe =
       match kind with
       | Dex_model.Prv m -> List.sort_uniq compare [ 0; 1; m ]
       | Freq -> [ 0; 1 ]
     in
     match Oracles.legal_pair ~universe (Dex_model.pair_of_scenario scenario) with
     | Error reason -> Printf.printf "mutation %-12s breaks legality: %s\n" mutation reason
     | Ok _ ->
       Printf.printf "mutation %-12s WARNING: still passes the legality checker\n" mutation);
  let sys = Dex_model.system scenario in
  let check sum = Dex_model.check scenario sum in
  match
    Checker.sample ~sys ~seed:options.seed ~schedules:options.samples
      ~max_steps:options.max_steps ~check ()
  with
  | None ->
    Printf.printf "mutation %-12s NOT FOUND in %d sampled schedules (seed %d)\n" mutation
      options.samples options.seed;
    None
  | Some (v, schedule) ->
    let shrunk = Checker.shrink ~sys ~check schedule in
    let verdict1 = Checker.replay_check ~sys ~check shrunk in
    let verdict2 = Checker.replay_check ~sys ~check shrunk in
    let deterministic =
      match (verdict1, verdict2) with
      | Some a, Some b ->
        Format.asprintf "%a" Oracles.pp_violation a
        = Format.asprintf "%a" Oracles.pp_violation b
      | _ -> false
    in
    Printf.printf
      "mutation %-12s violation: %s\n  schedule %d steps, shrunk to %d; deterministic \
       replay: %s\n"
      mutation
      (Format.asprintf "%a" Oracles.pp_violation v)
      (List.length schedule) (List.length shrunk)
      (if deterministic then "yes" else "NO");
    (match options.cex with
    | Some file ->
      Dex_model.save_counterexample ~file scenario shrunk v;
      Printf.printf "  counterexample written to %s (replay with dex_trace --replay)\n" file
    | None -> ());
    if deterministic then Some (scenario, shrunk, v) else None

let default_mutation_target () =
  (* All three at n = 6, t = 1 (P_prv dimensions; the non-dex lanes only
     need n > 5t from the pair):
     - dex/p2-gt-t: a view with t+1 occurrences of m two-step-decides m
       while the underlying consensus settles on the majority value;
     - two-step/decide-low: split adopt samples leave mixed second-round
       votes, and 2c > n-t fires on a minority-supported value;
     - hbft/spec-low: give-up timeouts split the accepts, and n-2t
       matching accepts speculatively decide against the UC outcome. *)
  let n = 6 and t = 1 in
  match lane () with
  | PL.Dex -> ("p2-gt-t", Dex_model.Prv 1, n, t, [ 1; 1; 0; 0; 0; 0 ], [])
  | PL.Kuo_chen -> ("decide-low", Dex_model.Prv 1, n, t, [ 1; 1; 1; 0; 0; 0 ], [])
  | PL.Hbft ->
    (* spec-low alone is still safe here — four matching accepts drag the
       UC majority along — so the planted bug needs the lane's Byzantine
       coordinator: the equivocator splits VAL/ORDER/ACCEPT at pid 0 (the
       coordinator for seed 0), give-up timeouts split the correct
       accepts 3/2, and a spec-decide on the 3-side disagrees with the
       UC outcome on the 2-side. *)
    ( "spec-low",
      Dex_model.Prv 1,
      n,
      t,
      [ 0; 1; 0; 0; 0; 0 ],
      [ (0, Dex_model.Equivocate { v1 = 0; v2 = 1; cut = 3 }) ] )

let run_replay file =
  let scenario, schedule = Dex_model.load_counterexample ~file in
  let sys = Dex_model.system scenario in
  let check sum = Dex_model.check scenario sum in
  Printf.printf "replaying %s: %s %s n=%d t=%d mutation=%s, %d schedule entries\n" file
    (PL.id_to_string scenario.Dex_model.lane)
    (Format.asprintf "%a" pp_kind scenario.Dex_model.kind)
    scenario.Dex_model.n scenario.Dex_model.t
    (Option.value ~default:"none" scenario.Dex_model.mutation)
    (List.length schedule);
  let trace = Dex_model.trace scenario schedule in
  List.iter
    (fun e ->
      Printf.printf "  [step %4.0f] %s\n" e.Dex_sim.Trace.time e.Dex_sim.Trace.label)
    (Dex_sim.Trace.to_list trace);
  match Checker.replay_check ~sys ~check schedule with
  | Some v ->
    Printf.printf "violation reproduced: %s\n" (Format.asprintf "%a" Oracles.pp_violation v);
    0
  | None ->
    Printf.printf "no violation on replay\n";
    1

(* ------------------------- worst-case search ------------------------- *)

(* Default target for --worst-case: P_freq at its smallest t=1
   configuration (n=7), near-unanimous input — the FIFO run one-step
   decides almost everywhere, so there is an expedited path for an
   adversarial schedule to destroy — plus a churn slot that starts mute and
   heals after a few steps (the dynamic adversary both lanes share). *)
let default_worst_case_target () =
  let n = 7 and t = 1 in
  let proposals = [ 1; 0; 0; 0; 0; 0; 0 ] in
  let faults =
    [
      ( 0,
        Dex_model.Churn_sched
          [ (0, Dex_net.Adversary.Churn_mute); (6, Dex_net.Adversary.Churn_honest) ] );
    ]
  in
  (Dex_model.Freq, n, t, proposals, faults)

(* Compile a worst-case schedule into a replayable chaos plan: rank mesh
   links by the mean normalized position of their deliveries in the
   schedule (late links are the ones the adversary starves), give the
   latest third delay+reorder rules scaled by their lateness, and carry the
   scenario's churn schedule over as timed churn events. The result is an
   approximation — a live network has no delivery-order oracle — but it
   reproduces the schedule's shape: the same links lag, the same replica
   churns. *)
let schedule_to_plan ~seed scenario schedule =
  let n = scenario.Dex_model.n in
  let total = List.length schedule in
  let tbl : (Dex_net.Pid.t * Dex_net.Pid.t, float * int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i k ->
      let src = k.Exec.src and dst = k.Exec.dst in
      if src <> dst && src < n && dst < n then begin
        let pos = float_of_int i /. float_of_int (max 1 (total - 1)) in
        let s, c = Option.value ~default:(0.0, 0) (Hashtbl.find_opt tbl (src, dst)) in
        Hashtbl.replace tbl (src, dst) (s +. pos, c + 1)
      end)
    schedule;
  let links =
    Hashtbl.fold (fun k (s, c) acc -> ((k, s /. float_of_int c), c) :: acc) tbl []
    |> List.map fst
    |> List.sort (fun ((la, lb), a) ((ra, rb), b) ->
           match Float.compare b a with 0 -> compare (la, lb) (ra, rb) | cmp -> cmp)
  in
  let latest = List.filteri (fun i _ -> i < max 1 (List.length links / 3)) links in
  let rules =
    List.map
      (fun ((src, dst), lateness) ->
        ( Dex_runtime.Fault_plan.Link (src, dst),
          {
            Dex_runtime.Fault_plan.clean_rule with
            Dex_runtime.Fault_plan.delay = 0.01 +. (0.04 *. lateness);
            reorder = 0.5;
            jitter = 0.005;
          } ))
      latest
  in
  (* Step-indexed churn becomes timed churn: half a second per entry is
     slow enough for a live deployment to commit traffic in every mode
     window and fast enough for a short gauntlet. *)
  let churn =
    List.concat_map
      (fun (pid, fault) ->
        match fault with
        | Dex_model.Churn_sched sched ->
          List.mapi
            (fun i (_, mode) ->
              {
                Dex_runtime.Fault_plan.c_at = 0.5 *. float_of_int i;
                c_pid = pid;
                c_mode = mode;
              })
            sched
        | _ -> [])
      scenario.Dex_model.faults
  in
  { Dex_runtime.Fault_plan.empty_spec with Dex_runtime.Fault_plan.seed; rules; churn }

let run_worst_case () =
  let kind, n, t, proposals, faults =
    if options.pair <> "" && options.n > 0 then begin
      let kind = kind_of_pair options.pair in
      let n = options.n and t = max options.t 0 in
      let proposals =
        match options.input with
        | Some spec -> List.filter_map int_of_string_opt (String.split_on_char ',' spec)
        | None -> 1 :: List.init (n - 1) (fun _ -> 0)
      in
      let _, _, _, _, faults = default_worst_case_target () in
      (kind, n, t, proposals, if options.faults then faults else [])
    end
    else default_worst_case_target ()
  in
  let scenario = { (base_scenario kind ~n ~t) with Dex_model.proposals; faults } in
  let sys = Dex_model.system scenario in
  let score sum = Dex_model.one_step_loss scenario sum in
  let fifo_loss =
    let t0 = Exec.create sys in
    ignore (Exec.run_fifo t0);
    score (Exec.summary t0)
  in
  Printf.printf "worst-case search: %s %s n=%d t=%d proposals=[%s] faults=%d budget=%d\n"
    (PL.id_to_string (lane ()))
    (Format.asprintf "%a" pp_kind kind)
    n t
    (String.concat ";" (List.map string_of_int proposals))
    (List.length faults) options.budget;
  let outcome = Checker.search ~sys ~bounds:(bounds ()) ~score () in
  let st = outcome.Checker.search_stats in
  Printf.printf "  %d schedules scored, %d transitions, %d+%d pruned%s\n"
    st.Checker.schedules st.Checker.transitions st.Checker.fp_prunes st.Checker.sleep_prunes
    (if st.Checker.exhausted then ", exhaustive" else ", bounded");
  match outcome.Checker.best with
  | None ->
    Printf.printf "  no complete schedule within bounds\n";
    1
  | Some (best_loss, schedule) ->
    Printf.printf "  FIFO one-step loss %d, worst schedule loss %d (%d steps)%s\n" fifo_loss
      best_loss (List.length schedule)
      (if best_loss > fifo_loss then " — strictly worse than FIFO" else "");
    (match options.plan_out with
    | None -> ()
    | Some file ->
      let spec = schedule_to_plan ~seed:options.seed scenario schedule in
      (match Dex_runtime.Fault_plan.validate ~n ~t spec with
      | Ok () ->
        Dex_runtime.Fault_plan.save ~file spec;
        Printf.printf "  chaos plan written to %s (replay with dex_server gauntlet --chaos-plan)\n"
          file
      | Error e -> Printf.printf "  NOT writing plan: validation failed: %s\n" e));
    if best_loss >= fifo_loss then 0 else 1

let run_smoke () =
  Printf.printf "dex_mc --smoke (%s): exhaustive n=4,t=0 + planted-mutation check\n"
    (PL.id_to_string (lane ()));
  let saved_budget = options.budget in
  options.budget <- min options.budget 1;
  let tag = PL.id_to_string (lane ()) in
  let ok1, ex1 =
    sweep
      ~label:(Printf.sprintf "%s P_freq n=4 t=0" tag)
      (scenarios_for Dex_model.Freq ~n:4 ~t:0)
  in
  let ok2, ex2 =
    sweep
      ~label:(Printf.sprintf "%s P_prv(m=1) n=4 t=0" tag)
      (scenarios_for (Dex_model.Prv 1) ~n:4 ~t:0)
  in
  options.budget <- saved_budget;
  let mutation, kind, n, t, proposals, faults = default_mutation_target () in
  let found =
    find_mutant_counterexample ~faults ~mutation ~kind ~n ~t ~proposals () <> None
  in
  if ok1 && ok2 && ex1 && ex2 && found then begin
    Printf.printf "smoke: PASS\n";
    0
  end
  else begin
    Printf.printf "smoke: FAIL\n";
    1
  end

let run_sweep () =
  (* The acceptance sweep: exhaustive smallest configurations at delay
     budget 2, delay-bounded (budget 1) larger ones, for both pairs.
     P_freq needs n > 6t, so its t=1 configuration is n=7 (n=6 is not
     constructible). Mixed-input t=1 scenarios blow up at budget 2, so
     the larger configs trade depth for full input/fault coverage. *)
  let targets =
    if options.pair <> "" && options.n > 0 then
      [ (kind_of_pair options.pair, options.n, max options.t 0, options.budget) ]
    else if lane () = PL.Dex then
      [
        (Dex_model.Freq, 4, 0, options.budget);
        (Dex_model.Prv 1, 4, 0, options.budget);
        (Dex_model.Prv 1, 6, 1, min options.budget 1);
        (Dex_model.Freq, 7, 1, min options.budget 1);
      ]
    else
      (* The non-dex lanes only take the pair's dimensions, so one kind per
         shape suffices; P_prv covers both the exhaustive t=0 floor and the
         smallest Byzantine-capable shape n=5t+1. *)
      [
        (Dex_model.Freq, 4, 0, options.budget);
        (Dex_model.Prv 1, 4, 0, options.budget);
        (Dex_model.Prv 1, 6, 1, min options.budget 1);
      ]
  in
  let saved_budget = options.budget in
  let all_ok =
    List.for_all
      (fun (kind, n, t, budget) ->
        options.budget <- budget;
        let label =
          Format.asprintf "%s %a n=%d t=%d b=%d"
            (PL.id_to_string (lane ()))
            pp_kind kind n t budget
        in
        let ok = fst (sweep ~label (scenarios_for kind ~n ~t)) in
        options.budget <- saved_budget;
        ok)
      targets
  in
  if all_ok then 0 else 1

let () =
  parse_args ();
  let code =
    match (options.replay, options.mutate, options.smoke) with
    | _ when options.worst_case -> run_worst_case ()
    | Some file, _, _ -> run_replay file
    | None, Some mutation, _ ->
      let kind, n, t, proposals, faults =
        if options.pair <> "" && options.n > 0 then begin
          let kind = kind_of_pair options.pair in
          let n = options.n and t = max options.t 0 in
          let _, _, dn, _, dp, df = default_mutation_target () in
          let proposals =
            match options.input with
            | Some spec ->
              List.filter_map int_of_string_opt (String.split_on_char ',' spec)
            | None -> dp
          in
          (kind, n, t, proposals, if n = dn then df else [])
        end
        else
          let _, kind, n, t, proposals, faults = default_mutation_target () in
          (kind, n, t, proposals, faults)
      in
      if find_mutant_counterexample ~faults ~mutation ~kind ~n ~t ~proposals () <> None
      then 0
      else 1
    | None, None, true -> run_smoke ()
    | None, None, false -> run_sweep ()
  in
  exit code
