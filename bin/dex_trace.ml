(* dex_trace: render one consensus run as a per-process timeline.

   Replays a seeded scenario with tracing on and prints, per virtual-time
   bucket, what each process received and when it decided — a quick way to
   *see* the one-step / two-step / underlying lanes of Figure 1 racing each
   other, and to debug schedules.

   Usage:
     dune exec bin/dex_trace.exe                          # defaults
     dune exec bin/dex_trace.exe -- --algo bosco --seed 3 --input margin:3
     dune exec bin/dex_trace.exe -- --sched async --input margin:5 --max-lines 60
     dune exec bin/dex_trace.exe -- --replay cex.txt      # model-checker counterexample
*)

open Dex_stdext
open Dex_vector
open Dex_condition
open Dex_net
open Dex_underlying

module D = Dex_core.Dex.Make (Uc_oracle)
module B = Dex_baselines.Bosco.Make (Uc_oracle)

type options = {
  mutable algo : string;
  mutable seed : int;
  mutable input : string;
  mutable sched : string;
  mutable n : int;
  mutable t : int;
  mutable max_lines : int;
  mutable replay : string option;
}

let options =
  { algo = "dex-freq"; seed = 1; input = "margin:3"; sched = "lockstep"; n = 7; t = 1;
    max_lines = 80; replay = None }

let parse_args () =
  let rec go = function
    | "--algo" :: v :: rest ->
      options.algo <- v;
      go rest
    | "--replay" :: v :: rest ->
      options.replay <- Some v;
      go rest
    | "--seed" :: v :: rest ->
      options.seed <- int_of_string v;
      go rest
    | "--input" :: v :: rest ->
      options.input <- v;
      go rest
    | "--sched" :: v :: rest ->
      options.sched <- v;
      go rest
    | "-n" :: v :: rest ->
      options.n <- int_of_string v;
      go rest
    | "-t" :: v :: rest ->
      options.t <- int_of_string v;
      go rest
    | "--max-lines" :: v :: rest ->
      options.max_lines <- int_of_string v;
      go rest
    | [] -> ()
    | x :: _ -> failwith (Printf.sprintf "unknown argument %s" x)
  in
  go (List.tl (Array.to_list Sys.argv))

let proposals_of_spec ~rng ~n = function
  | s when String.length s > 10 && String.sub s 0 10 = "unanimous:" ->
    Dex_workload.Input_gen.unanimous ~n (int_of_string (String.sub s 10 (String.length s - 10)))
  | s when String.length s > 7 && String.sub s 0 7 = "margin:" ->
    Dex_workload.Input_gen.with_freq_margin ~rng ~n
      ~margin:(int_of_string (String.sub s 7 (String.length s - 7)))
  | _ -> failwith "input must be unanimous:V or margin:M"

let discipline_of = function
  | "lockstep" -> Discipline.lockstep
  | "async" -> Discipline.asynchronous
  | s -> failwith (Printf.sprintf "unknown schedule %s" s)

(* Replay a model-checker counterexample file (written by
   dex_mc --mutate --cex FILE) as a step-indexed timeline. *)
let run_replay file =
  let module M = Dex_mcheck.Dex_model in
  let scenario, schedule = M.load_counterexample ~file in
  Printf.printf "replay %s: %s n=%d t=%d mutation=%s\n" file
    (match scenario.M.kind with
    | M.Freq -> "P_freq"
    | M.Prv m -> Printf.sprintf "P_prv(m=%d)" m)
    scenario.M.n scenario.M.t
    (Option.value ~default:"none" scenario.M.mutation);
  Printf.printf "proposals: [%s], %d scheduled deliveries + FIFO tail\n\n"
    (String.concat ";" (List.map string_of_int scenario.M.proposals))
    (List.length schedule);
  let entries = Dex_sim.Trace.to_list (M.trace scenario schedule) in
  let shown = ref 0 in
  List.iter
    (fun e ->
      if !shown < options.max_lines then begin
        Printf.printf "  [step %4.0f] %s\n" e.Dex_sim.Trace.time e.Dex_sim.Trace.label;
        incr shown
      end)
    entries;
  if List.length entries > !shown then
    Printf.printf "  … %d further events (raise --max-lines to see more)\n"
      (List.length entries - !shown)

let () =
  parse_args ();
  match options.replay with
  | Some file -> run_replay file
  | None ->
  let n = options.n and t = options.t in
  let rng = Prng.create ~seed:(options.seed * 31) in
  let proposals = proposals_of_spec ~rng ~n options.input in
  let discipline = discipline_of options.sched in
  let run_traced () =
    match options.algo with
    | "dex-freq" ->
      let cfg = D.config ~seed:options.seed ~pair:(Pair.freq ~n ~t) () in
      Runner.run
        (Runner.config ~discipline ~seed:options.seed ~extra:(D.extra cfg) ~trace:true
           ~pp_msg:D.pp_msg ~n (fun p ->
             D.instance cfg ~me:p ~proposal:(Input_vector.get proposals p)))
    | "bosco" ->
      let cfg = B.config ~seed:options.seed ~n ~t () in
      Runner.run
        (Runner.config ~discipline ~seed:options.seed ~extra:(B.extra cfg) ~trace:true
           ~pp_msg:B.pp_msg ~n (fun p ->
             B.instance cfg ~me:p ~proposal:(Input_vector.get proposals p)))
    | other -> failwith (Printf.sprintf "unknown algorithm %s (dex-freq | bosco)" other)
  in
  let result = run_traced () in
  Printf.printf "algo=%s n=%d t=%d seed=%d input=%s sched=%s\n" options.algo n t options.seed
    options.input options.sched;
  Printf.printf "proposals: %s\n\n" (Format.asprintf "%a" Input_vector.pp proposals);

  (* Timeline: bucket trace entries by integer time; show decisions inline. *)
  let entries = Dex_sim.Trace.to_list result.Runner.trace in
  let shown = ref 0 in
  let last_bucket = ref (-1) in
  List.iter
    (fun e ->
      if !shown < options.max_lines then begin
        let bucket = int_of_float e.Dex_sim.Trace.time in
        if bucket <> !last_bucket then begin
          last_bucket := bucket;
          Printf.printf "---- t in [%d, %d) ----\n" bucket (bucket + 1)
        end;
        let label = e.Dex_sim.Trace.label in
        let interesting =
          String.length label >= 6 && (String.sub label 0 6 = "decide" || String.sub label 0 5 = "start")
        in
        if interesting || !shown < options.max_lines then begin
          Printf.printf "  [%6.2f] %s\n" e.Dex_sim.Trace.time label;
          incr shown
        end
      end)
    entries;
  if List.length entries > !shown then
    Printf.printf "  … %d further events (raise --max-lines to see more)\n"
      (List.length entries - !shown);

  Printf.printf "\ndecisions:\n";
  Array.iteri
    (fun p d ->
      match d with
      | Some d ->
        Printf.printf "  p%d -> %d via %-10s depth=%d t=%.2f\n" p d.Runner.value d.Runner.tag
          d.Runner.depth d.Runner.time
      | None -> Printf.printf "  p%d -> undecided\n" p)
    result.Runner.decisions;
  Printf.printf "messages: %d sent, %d delivered, %d dropped\n" result.Runner.sent
    result.Runner.delivered result.Runner.dropped
