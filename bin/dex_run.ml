(* dex_run: command-line driver for the DEX reproduction.

   Subcommands:
     run       one consensus instance, printed per-process
     sweep     many seeds of one configuration, aggregated
     legality  exhaustive legality check of a condition-sequence pair
     log       a replicated-log (SMR) run

   Examples:
     dune exec bin/dex_run.exe -- run --algo dex-freq --n 7 --t 1 --input unanimous:5
     dune exec bin/dex_run.exe -- run --algo bosco --n 6 --t 1 --input margin:3 --sched async
     dune exec bin/dex_run.exe -- sweep --algo dex-freq --n 7 --t 1 --input skew:80 --trials 100
     dune exec bin/dex_run.exe -- legality --pair freq --n 7 --t 1
     dune exec bin/dex_run.exe -- log --slots 10 --contention 25
*)

open Cmdliner
open Dex_stdext
open Dex_vector
open Dex_condition
open Dex_net
open Dex_metrics
open Dex_workload

(* ----------------------------- parsers ----------------------------- *)

let algo_of_string = function
  | "dex-freq" -> Ok Scenario.Dex_freq
  | "dex-freq-snapshot" -> Ok Scenario.Dex_freq_snapshot
  | "two-step" | "kuo-chen" -> Ok Scenario.Kuo_chen
  | "hbft" -> Ok Scenario.Hbft
  | "bosco" -> Ok Scenario.Bosco
  | "friedman" -> Ok Scenario.Friedman
  | "brasileiro" -> Ok Scenario.Brasileiro
  | "izumi" -> Ok Scenario.Izumi
  | "sync-flood" -> Ok Scenario.Sync_flood
  | "plain" -> Ok Scenario.Plain
  | s when String.length s > 8 && String.sub s 0 8 = "dex-prv:" ->
    (try Ok (Scenario.Dex_prv (int_of_string (String.sub s 8 (String.length s - 8))))
     with Failure _ -> Error (`Msg "dex-prv:<m> expects an integer"))
  | "dex-prv" -> Ok (Scenario.Dex_prv 1)
  | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))

let algo_conv =
  let pp ppf a = Format.pp_print_string ppf (Scenario.algo_name a) in
  Arg.conv (algo_of_string, pp)

let split_on_char_nonempty c s = List.filter (fun x -> x <> "") (String.split_on_char c s)

let input_of_string ~rng ~n s =
  match String.split_on_char ':' s with
  | [ "unanimous"; v ] -> Ok (Input_gen.unanimous ~n (int_of_string v))
  | [ "margin"; m ] -> Ok (Input_gen.with_freq_margin ~rng ~n ~margin:(int_of_string m))
  | [ "priv"; count ] ->
    Ok (Input_gen.with_privileged_count ~rng ~n ~m:1 ~count:(int_of_string count) ~others:[ 0 ])
  | [ "skew"; bias ] ->
    Ok
      (Input_gen.skewed ~rng ~n ~favorite:5 ~others:[ 1; 2 ]
         ~bias:(float_of_string bias /. 100.0))
  | [ "uniform" ] -> Ok (Input_gen.uniform ~rng ~n ~values:[ 0; 1; 2 ])
  | [ "csv"; vals ] ->
    let vs = List.map int_of_string (split_on_char_nonempty ',' vals) in
    if List.length vs <> n then Error (`Msg "csv input must list exactly n values")
    else Ok (Input_vector.of_list vs)
  | _ ->
    Error
      (`Msg
        "input must be unanimous:V | margin:M | priv:COUNT | skew:PCT | uniform | csv:v1,v2,…")

let sched_of_string = function
  | "lockstep" -> Ok Discipline.lockstep
  | "async" -> Ok Discipline.asynchronous
  | s -> (
    match String.split_on_char ':' s with
    | [ "exp"; mean ] -> Ok (Discipline.exponential ~mean:(float_of_string mean))
    | [ "uniform"; lo; hi ] ->
      Ok (Discipline.uniform ~lo:(float_of_string lo) ~hi:(float_of_string hi))
    | _ -> Error (`Msg "sched must be lockstep | async | exp:MEAN | uniform:LO:HI"))

let sched_conv =
  Arg.conv (sched_of_string, fun ppf d -> Format.pp_print_string ppf d.Discipline.name)

let faults_of ~n ~f = function
  | "silent" -> Ok (Fault_spec.last_k ~n ~k:f Fault_spec.Silent)
  | "crash-mid" -> Ok (Fault_spec.last_k ~n ~k:f Fault_spec.Crash_mid)
  | "equivocate" ->
    Ok (Fault_spec.equivocate_split (List.init f (fun i -> n - 1 - i)) ~n ~low:1 ~high:2)
  | "noisy" -> Ok (Fault_spec.last_k ~n ~k:f Fault_spec.Noisy)
  | s -> Error (`Msg (Printf.sprintf "unknown fault kind %S" s))

(* ----------------------------- flags ----------------------------- *)

let algo_t =
  Arg.(
    value
    & opt algo_conv Scenario.Dex_freq
    & info [ "algo" ]
        ~doc:
          "Algorithm: dex-freq, dex-freq-snapshot, dex-prv[:M], two-step, hbft, bosco, \
           friedman, brasileiro, izumi, sync-flood, plain.")

let n_t = Arg.(value & opt int 7 & info [ "n"; "procs" ] ~doc:"Number of processes.")

let t_t = Arg.(value & opt int 1 & info [ "t"; "faults-bound" ] ~doc:"Failure bound.")

let f_t = Arg.(value & opt int 0 & info [ "f" ] ~doc:"Actual number of faulty processes.")

let fault_kind_t =
  Arg.(
    value & opt string "silent"
    & info [ "byz" ] ~doc:"Fault behaviour: silent, crash-mid, equivocate, noisy.")

let input_t =
  Arg.(
    value & opt string "unanimous:5"
    & info [ "input" ] ~doc:"Input vector spec (see run --help).")

let sched_t =
  Arg.(
    value
    & opt sched_conv Discipline.lockstep
    & info [ "sched" ] ~doc:"Delivery schedule: lockstep, async, exp:MEAN, uniform:LO:HI.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.")

let uc_t =
  Arg.(
    value & opt string "oracle"
    & info [ "uc" ] ~doc:"Underlying consensus: oracle, real (Bracha+MMR) or leader.")

let trials_t = Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Number of seeds for sweep.")

let uc_of_string = function
  | "oracle" -> Ok Scenario.Oracle
  | "real" -> Ok Scenario.Real
  | "leader" -> Ok Scenario.Leader
  | s -> Error (`Msg (Printf.sprintf "unknown uc %S" s))

let build_spec ~algo ~n ~t ~f ~fault_kind ~input ~sched ~seed ~uc =
  let rng = Prng.create ~seed:(seed * 7919) in
  let ( let* ) = Result.bind in
  let* proposals = input_of_string ~rng ~n input in
  let* faults = faults_of ~n ~f fault_kind in
  let* uc = uc_of_string uc in
  Ok (Scenario.spec ~uc ~seed ~discipline:sched ~faults ~algo ~n ~t ~proposals ())

(* ----------------------------- run ----------------------------- *)

let run_cmd =
  let action algo n t f fault_kind input sched seed uc =
    match build_spec ~algo ~n ~t ~f ~fault_kind ~input ~sched ~seed ~uc with
    | Error (`Msg m) -> `Error (false, m)
    | Ok spec -> (
      match Scenario.run spec with
      | exception Invalid_argument m -> `Error (false, m)
      | exception Pair.Assumption_violated m -> `Error (false, m)
      | out ->
        Printf.printf "algorithm: %s   n=%d t=%d f=%d   input: %s   schedule: %s\n\n"
          (Scenario.algo_name algo) n t f input spec.Scenario.discipline.Discipline.name;
        List.iter
          (fun (p, d) ->
            Printf.printf "p%-2d decided %-6d via %-10s at step %d (t=%.2f)\n" p
              d.Runner.value d.Runner.tag d.Runner.depth d.Runner.time)
          out.Scenario.decisions;
        List.iter
          (fun p ->
            if not (List.mem_assoc p out.Scenario.decisions) then
              Printf.printf "p%-2d UNDECIDED\n" p)
          out.Scenario.correct;
        Printf.printf "\nagreement: %b   messages: %d (%s)\n" out.Scenario.agreement
          out.Scenario.sent
          (String.concat ", "
             (List.map (fun (c, k) -> Printf.sprintf "%s:%d" c k) out.Scenario.sent_by_class));
        `Ok ())
  in
  let term =
    Term.(
      ret
        (const action $ algo_t $ n_t $ t_t $ f_t $ fault_kind_t $ input_t $ sched_t $ seed_t
       $ uc_t))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one consensus instance and print decisions.") term

(* ----------------------------- sweep ----------------------------- *)

let sweep_cmd =
  let action algo n t f fault_kind input sched seed uc trials =
    let outs = ref [] in
    let failed = ref None in
    for i = 0 to trials - 1 do
      if !failed = None then
        match build_spec ~algo ~n ~t ~f ~fault_kind ~input ~sched ~seed:(seed + i) ~uc with
        | Error (`Msg m) -> failed := Some m
        | Ok spec -> (
          match Scenario.run spec with
          | exception Invalid_argument m -> failed := Some m
          | exception Pair.Assumption_violated m -> failed := Some m
          | out -> outs := out :: !outs)
    done;
    match !failed with
    | Some m -> `Error (false, m)
    | None ->
      let outs = !outs in
      let steps =
        List.concat_map
          (fun o -> List.map (fun (_, d) -> float_of_int d.Runner.depth) o.Scenario.decisions)
          outs
      in
      let agree = List.for_all (fun o -> o.Scenario.agreement) outs in
      let decided = List.for_all (fun o -> o.Scenario.all_decided) outs in
      Printf.printf "algorithm: %s  n=%d t=%d f=%d  input: %s  trials: %d\n"
        (Scenario.algo_name algo) n t f input trials;
      Printf.printf "agreement in all runs: %b; all correct decided: %b\n" agree decided;
      if steps <> [] then begin
        Printf.printf "decision steps: %s\n"
          (Format.asprintf "%a" Stats.pp_summary (Stats.summarize steps));
        let hist = Histogram.create () in
        List.iter (fun s -> Histogram.add hist (int_of_float s)) steps;
        Printf.printf "step histogram: %s\n" (Format.asprintf "%a" Histogram.pp hist)
      end;
      let one = Stats.mean (List.map (fun o -> Scenario.fraction_fast o ~max_steps:1) outs) in
      let two = Stats.mean (List.map (fun o -> Scenario.fraction_fast o ~max_steps:2) outs) in
      Printf.printf "fast coverage: %.1f%% one-step, %.1f%% within two steps\n" (100. *. one)
        (100. *. two);
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ algo_t $ n_t $ t_t $ f_t $ fault_kind_t $ input_t $ sched_t $ seed_t
       $ uc_t $ trials_t))
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Run many seeds of one configuration and aggregate.") term

(* ----------------------------- legality ----------------------------- *)

let legality_cmd =
  let pair_t =
    Arg.(value & opt string "freq" & info [ "pair" ] ~doc:"Condition pair: freq or prv[:M].")
  in
  let universe_t =
    Arg.(value & opt string "0,1" & info [ "universe" ] ~doc:"Comma-separated value universe.")
  in
  let action pair_name n t universe =
    let universe = List.map int_of_string (split_on_char_nonempty ',' universe) in
    let pair =
      match String.split_on_char ':' pair_name with
      | [ "freq" ] -> Ok (Pair.freq ~n ~t)
      | [ "prv" ] -> Ok (Pair.privileged ~n ~t ~m:1)
      | [ "prv"; m ] -> Ok (Pair.privileged ~n ~t ~m:(int_of_string m))
      | _ -> Error (Printf.sprintf "unknown pair %S" pair_name)
    in
    match pair with
    | exception Pair.Assumption_violated m -> `Error (false, m)
    | Error m -> `Error (false, m)
    | Ok pair -> (
      match Legality.check ~universe pair with
      | [] ->
        Printf.printf "%s with n=%d t=%d is LEGAL over {%s} (LT1 LT2 LA3 LA4 LU5 + monotone)\n"
          pair.Pair.name n t
          (String.concat "," (List.map string_of_int universe));
        `Ok ()
      | violations ->
        List.iter (fun v -> Format.printf "%a@." Legality.pp_violation v) violations;
        `Error (false, "pair is NOT legal"))
  in
  let term = Term.(ret (const action $ pair_t $ n_t $ t_t $ universe_t)) in
  Cmd.v
    (Cmd.info "legality" ~doc:"Exhaustively verify the legality criteria of a pair (small n).")
    term

(* ----------------------------- log ----------------------------- *)

let log_cmd =
  let slots_t = Arg.(value & opt int 10 & info [ "slots" ] ~doc:"Log length.") in
  let contention_t =
    Arg.(value & opt int 25 & info [ "contention" ] ~doc:"Percent of contended slots.")
  in
  let action n t slots contention seed =
    let module L = Dex_smr.Replicated_log.Make (Dex_core.Dex.Lane (Dex_underlying.Uc_oracle)) in
    match Pair.freq ~n ~t with
    | exception Pair.Assumption_violated m -> `Error (false, m)
    | pair ->
      let cfg = L.config ~seed ~pair:(fun _ -> pair) ~slots ~n ~t () in
      let rng = Prng.create ~seed in
      let contended = Array.init slots (fun _ -> Prng.int rng 100 < contention) in
      let commits = Array.make n [] in
      let make replica =
        L.replica cfg ~me:replica
          ~propose:(fun ~slot ->
            if contended.(slot) then 100 + ((replica + slot) mod 2) else 100 + slot)
          ~on_commit:(fun ~slot ~provenance:_ value ->
            commits.(replica) <- (slot, value) :: commits.(replica))
      in
      let result =
        Runner.run
          (Runner.config ~discipline:Discipline.asynchronous ~seed ~extra:(L.extra cfg) ~n make)
      in
      Printf.printf "replicated log: n=%d t=%d slots=%d (%d%% contended), %d messages\n" n t
        slots contention result.Runner.sent;
      let reference = List.rev commits.(0) in
      List.iter
        (fun (slot, v) ->
          Printf.printf "  slot %2d -> %d%s\n" slot v
            (if contended.(slot) then "  (contended)" else ""))
        reference;
      let all_equal = Array.for_all (fun l -> List.rev l = reference) commits in
      Printf.printf "logs identical on all %d replicas: %b\n" n all_equal;
      `Ok ()
  in
  let term = Term.(ret (const action $ n_t $ t_t $ slots_t $ contention_t $ seed_t)) in
  Cmd.v (Cmd.info "log" ~doc:"Order a stream of commands with a DEX replicated log.") term

let () =
  let info =
    Cmd.info "dex_run" ~version:"1.0.0"
      ~doc:"Doubly-Expedited One-Step Byzantine Consensus (DSN 2010) — reproduction driver"
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; sweep_cmd; legality_cmd; log_cmd ]))
