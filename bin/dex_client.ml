(* Load-driving client for the replicated KV service (see bin/dex_server.ml).

     dex_server serve --port-base 7000 &
     dex_client --ports 7000,7001,7002,7003 --duration 10

   Submits to all replicas (leader-less, first-commit-wins) and reports
   throughput, latency percentiles, and the fraction of requests whose log
   slot decided on the paper's one-step path.

   Against a sharded deployment (dex_server serve --shards K), pass the same
   --shards K: --ports is then split into K consecutive equal groups (the
   order `serve` prints them in), every request is routed to its owning
   group through the same deterministic shard map the server uses, and the
   report aggregates across shards with a per-shard breakdown. *)

open Cmdliner
module Sm = Dex_service.State_machine
module Router = Dex_shard.Router

let workload_of ?(value_bytes = 0) name client =
  if value_bytes > 0 then begin
    (* Large-value mode: every op writes a [value_bytes]-byte opaque blob,
       spread over 16 keys, exercising the batch dissemination lane. *)
    let payload = String.make value_bytes 'x' in
    fun i -> Sm.Blob (Printf.sprintf "b%d" (i mod 16), payload)
  end
  else
    match name with
    | "add" -> fun i -> ignore i; Sm.Add ("k", 1)
    | "set" -> fun i -> Sm.Set (Printf.sprintf "c%d-k%d" client (i mod 16), i)
    | "mixed" ->
      fun i ->
        (match i mod 4 with
        | 0 -> Sm.Set (Printf.sprintf "k%d" (i mod 8), i)
        | 1 -> Sm.Add ("total", 1)
        | 2 -> Sm.Get (Printf.sprintf "k%d" (i mod 8))
        | _ -> Sm.Nop)
    | other -> failwith (Printf.sprintf "unknown workload %S (use add, set or mixed)" other)

(* The client is protocol-agnostic on the wire — replies carry commit
   provenance whatever lane the servers run — but which provenance is the
   lane's fast path differs: dex expedites to one step, the two-step and
   hbft lanes to two. [--protocol] picks the lane so the headline fraction
   matches the servers'. *)
let fast_path_of protocol =
  match Dex_core.Protocol_lane.id_of_string protocol with
  | None ->
    failwith (Printf.sprintf "unknown protocol %S (use dex, two-step or hbft)" protocol)
  | Some id ->
    let module PL = Dex_core.Protocol_lane in
    let fast p =
      match (id, p) with
      | PL.Dex, PL.One_step -> true
      | (PL.Kuo_chen | PL.Hbft), PL.Two_step -> true
      | _ -> false
    in
    let name =
      List.find fast PL.all_provenances |> PL.metric_of_provenance
    in
    (name, fast)

let print_agg ~protocol (report : Dex_service.Client.Load.report) =
  Format.printf "%a@." Dex_service.Client.Load.pp_report report;
  let fast_name, fast = fast_path_of protocol in
  let count p n = if fast p then n else 0 in
  let module PL = Dex_core.Protocol_lane in
  let hits =
    count PL.One_step report.Dex_service.Client.Load.one_step
    + count PL.Two_step report.Dex_service.Client.Load.two_step
  in
  let total = float_of_int (max 1 report.Dex_service.Client.Load.committed) in
  Format.printf "%s fraction (fast path): %.1f%%@."
    fast_name
    (100.0 *. float_of_int hits /. total)

(* Sharded aggregate-throughput mode: one router over K port groups, the
   whole client population multiplexed through it. *)
let sharded_action ~protocol ports shards client clients duration timeout workload value_bytes
    io_mode =
  if List.length ports mod shards <> 0 then
    failwith
      (Printf.sprintf "--ports lists %d ports, not divisible into %d equal shard groups"
         (List.length ports) shards);
  let per = List.length ports / shards in
  let groups =
    List.init shards (fun i -> List.filteri (fun j _ -> j / per = i) ports)
  in
  let map = Dex_shard.Shard_map.create ~shards () in
  let r = Router.connect ~io_mode ~map ~client groups in
  let report =
    Router.Load.run_many ~clients:(max 1 clients) ~timeout ~duration r
      (workload_of ~value_bytes workload client)
  in
  Router.close r;
  Format.printf "%a@." Router.Load.pp_report report;
  print_agg ~protocol report.Router.Load.agg

let action ports_s shards client clients duration pace timeout attempts workload value_bytes
    io_mode protocol =
  match
    let ports = List.map int_of_string (String.split_on_char ',' ports_s) in
    if shards > 1 then
      sharded_action ~protocol ports shards client clients duration timeout workload
        value_bytes io_mode
    else begin
      let gen = workload_of ~value_bytes workload client in
      let c = Dex_service.Client.connect ~io_mode ~client ports in
      let report =
        if clients > 1 then
          (* Throughput harness: many logical closed loops, one thread. *)
          Dex_service.Client.Load.run_many ~clients ~timeout ~duration c gen
        else Dex_service.Client.Load.run ~pace ~timeout ~attempts ~duration c gen
      in
      Dex_service.Client.close c;
      print_agg ~protocol report
    end
  with
  | exception Failure m -> `Error (false, m)
  | exception Invalid_argument m -> `Error (false, m)
  | () -> `Ok ()

let ports_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "ports" ] ~doc:"Comma-separated replica service ports (loopback).")

let shards_t =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:
          "Target a sharded deployment: split --ports into $(docv) consecutive equal \
           groups (shard order), route every request to its owning group through the \
           deterministic shard map, and report the cross-shard aggregate.")

let client_t = Arg.(value & opt int 1 & info [ "client" ] ~doc:"Client id (unique per deployment).")

let clients_t =
  Arg.(
    value & opt int 1
    & info [ "clients" ]
        ~doc:
          "Logical closed-loop clients multiplexed in one thread (ids \
           client..client+N-1); N > 1 is the throughput harness, 1 the latency \
           harness.")

let duration_t = Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Run time in seconds.")

let pace_t =
  Arg.(
    value & opt float 0.0
    & info [ "pace" ] ~doc:"Minimum seconds between submissions (0 = closed loop).")

let timeout_t =
  Arg.(value & opt float 1.0 & info [ "timeout" ] ~doc:"Per-attempt reply timeout (seconds).")

let attempts_t =
  Arg.(value & opt int 5 & info [ "attempts" ] ~doc:"Transmissions per request before giving up.")

let workload_t =
  Arg.(value & opt string "add" & info [ "workload" ] ~doc:"Workload: add, set or mixed.")

let value_bytes_t =
  Arg.(
    value & opt int 0
    & info [ "value-bytes" ]
        ~doc:
          "Write $(docv)-byte opaque blob values instead of the named workload (0 = off). \
           Exercises the large-value dissemination path (see dex_server \
           --dissemination).")

let protocol_t =
  Arg.(
    value & opt string "dex"
    & info [ "protocol" ]
        ~doc:
          "Protocol lane the servers run: $(b,dex), $(b,two-step) or $(b,hbft). The wire \
           format is lane-independent; this only selects which commit provenance counts \
           as the fast path in the headline fraction (one-step for dex, two-step for the \
           others).")

let io_mode_t =
  let conv_mode =
    let parse s =
      match Dex_runtime.Transport.io_mode_of_string s with
      | Some m -> Ok m
      | None -> Error (`Msg (Printf.sprintf "unknown io mode %S (use threads or reactor)" s))
    in
    Arg.conv
      (parse, fun ppf m -> Format.pp_print_string ppf (Dex_runtime.Transport.io_mode_to_string m))
  in
  Arg.(
    value
    & opt conv_mode Dex_runtime.Transport.Reactor
    & info [ "io-mode" ]
        ~doc:
          "Receive machinery: $(b,reactor) (one event loop, incremental frame reassembly, \
           coalesced writes) or $(b,threads) (one blocking reader thread per connection).")

let () =
  let info =
    Cmd.info "dex_client" ~version:"1.0.0"
      ~doc:"Closed-loop load generator for the DEX replicated KV service."
  in
  let term =
    Term.(
      ret
        (const action $ ports_t $ shards_t $ client_t $ clients_t $ duration_t $ pace_t
        $ timeout_t $ attempts_t $ workload_t $ value_bytes_t $ io_mode_t $ protocol_t))
  in
  exit (Cmd.eval (Cmd.v info term))
