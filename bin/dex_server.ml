(* Replicated KV service over the DEX log — server side.

   `serve` boots all n replicas of a loopback deployment in one process
   (real TCP between replicas and to clients) and prints the per-replica
   client service ports; point bin/dex_client at them. `--data-dir` turns
   on the durability lane (WAL + snapshots, persist-before-reply);
   `--stats S` prints a one-line service/WAL/link counter report every S
   seconds.

   `smoke` is the self-contained CI gate: boot a deployment (optionally with
   mute/equivocating replicas), drive it with an in-process closed-loop
   client, and fail unless the run committed work with zero agreement
   violations and no duplicate application.

   `restart` is the durability gate: boot a durable n=4 deployment, drive it
   with a closed-loop client, crash one replica mid-load (WAL abandoned, no
   final fsync), restart it from its data dir, and fail unless it catches
   back up to the identical state digest with zero agreement violations,
   zero lost acknowledged commits and zero duplicate applies. *)

open Cmdliner
open Dex_condition
open Dex_underlying
module PL = Dex_core.Protocol_lane
module Sm = Dex_service.State_machine
module R = Dex_metrics.Registry
module FP = Dex_runtime.Fault_plan

type opts = {
  n : int;
  t : int;
  pair_name : string;
  seed : int;
  window : int;
  batch_delay : float;
  settle : float;
  batch_cap : int;
  queue_cap : int;
  port_base : int;
  duration : float;
  mute : int list;
  equivocate : int list;
  data_dir : string option;
  stats_every : float;
  group_commit : bool;
  snapshot_every : int;
  kill : int;
  down : float;
  io_mode : Dex_runtime.Transport.io_mode;
  chaos_plan : string option;
  shards : int;
  dissemination : Dex_erasure.Dissemination.mode;
  value_bytes : int;
  submit_to : int;
}

(* The smoke/restart/gauntlet workload: plain counter Adds, or — under
   --value-bytes N — Blob writes carrying an N-byte opaque payload that
   still apply as an increment of "k", so the duplicate-apply (overshoot)
   audit keeps reading the same counter. *)
let workload_of opts =
  if opts.value_bytes <= 0 then fun _ -> Sm.Add ("k", 1)
  else
    let payload = String.make opts.value_bytes 'x' in
    fun _ -> Sm.Blob ("k", payload)

(* Client port subset: --submit-to K connects the driving client to the
   first K replicas only, starving the rest of direct submissions so their
   content arrives over the dissemination lane (fetch or fragments). *)
let submit_ports opts ports =
  if opts.submit_to <= 0 || opts.submit_to >= List.length ports then ports
  else List.filteri (fun i _ -> i < opts.submit_to) ports

let pair_of opts =
  match String.split_on_char ':' opts.pair_name with
  | [ "freq" ] -> Pair.freq ~n:opts.n ~t:opts.t
  | [ "prv" ] -> Pair.privileged ~n:opts.n ~t:opts.t ~m:0
  | [ "prv"; m ] -> Pair.privileged ~n:opts.n ~t:opts.t ~m:(int_of_string m)
  | _ -> failwith (Printf.sprintf "unknown pair %S (use freq or prv[:M])" opts.pair_name)

let roles_of opts p =
  if List.mem p opts.mute then Dex_service.Server.Mute
  else if List.mem p opts.equivocate then Dex_service.Server.Equivocator
  else Dex_service.Server.Correct

module Run (L : PL.LANE) = struct
  module S = Dex_service.Server.Make (L)
  module G = Dex_shard.Group_set.Make (L)
  module Router = Dex_shard.Router

  let config_of opts =
    let pair = pair_of opts in
    S.config ~seed:opts.seed ~io_mode:opts.io_mode ~window:opts.window
      ~batch_delay:opts.batch_delay ~settle:opts.settle ~batch_cap:opts.batch_cap
      ~queue_cap:opts.queue_cap ?data_dir:opts.data_dir ~group_commit:opts.group_commit
      ~snapshot_every:opts.snapshot_every ~dissemination:opts.dissemination
      ~pair:(fun _ -> pair)
      ~n:opts.n ~t:opts.t ()

  let launch ?roles ?chaos opts =
    let roles = match roles with Some r -> r | None -> roles_of opts in
    S.launch ~roles ?chaos ~port_base:opts.port_base (config_of opts)

  (* A sharded deployment: [opts.shards] groups behind one shared runtime,
     every group getting the same role assignment unless overridden. *)
  let launch_set ?roles ?chaos opts =
    let map = Dex_shard.Shard_map.create ~shards:opts.shards () in
    let roles =
      match roles with Some r -> r | None -> fun ~shard:_ p -> roles_of opts p
    in
    G.launch ~roles ?chaos ~port_base:opts.port_base ~map (config_of opts)

  let print_ports d =
    List.iter
      (fun (p, port) -> Printf.printf "replica %d: 127.0.0.1:%d\n%!" p port)
      d.S.ports

  let print_stats d =
    List.iter
      (fun (p, s) -> Format.printf "replica %d: %a@." p S.pp_stats (S.stats s))
      d.S.servers

  (* The `--stats` heartbeat, read entirely off the unified metrics
     registries: every replica's registry (service/wal/durability families)
     merged with the deployment's transport registry (net family), one line
     per tick. Counters sum across replicas; [apply_lag] and the fsync
     group-size high-water mark are reported as the per-replica maximum. *)
  let stats_line d =
    let replica_snaps = List.map (fun (_, s) -> R.snapshot (S.metrics s)) d.S.servers in
    let merged = R.merge (R.snapshot d.S.net_metrics :: replica_snaps) in
    let max_over name =
      List.fold_left (fun acc snap -> max acc (R.get snap name)) 0 replica_snaps
    in
    let wal_part =
      if not (List.mem_assoc "wal/appends" merged) then "wal off"
      else
        Printf.sprintf "wal app=%d fsync=%d grp<=%d seg=%d %dKiB"
          (R.get merged "wal/appends") (R.get merged "wal/fsyncs")
          (max_over "wal/max_group") (R.get merged "wal/segments")
          (R.get merged "wal/bytes" / 1024)
    in
    (* Per-peer link counters ([net/<kind>/peer<pid>]), rendered only for
       peers with any activity so a healthy mesh keeps the line short. *)
    let peer_part =
      let peers = Hashtbl.create 8 in
      List.iter
        (fun (name, _) ->
          match String.split_on_char '/' name with
          | [ "net"; kind; peer ]
            when String.length peer > 4 && String.sub peer 0 4 = "peer" ->
            let pid = int_of_string (String.sub peer 4 (String.length peer - 4)) in
            let r, b, dr =
              Option.value ~default:(0, 0, 0) (Hashtbl.find_opt peers pid)
            in
            let v = R.get merged name in
            Hashtbl.replace peers pid
              (match kind with
              | "reconnects" -> (r + v, b, dr)
              | "backoffs" -> (r, b + v, dr)
              | "drops" -> (r, b, dr + v)
              | _ -> (r, b, dr))
          | _ -> ())
        merged;
      let rows =
        Hashtbl.fold (fun pid counts acc -> (pid, counts) :: acc) peers []
        |> List.sort compare
        |> List.filter_map (fun (pid, (r, b, dr)) ->
               if r + b + dr = 0 then None
               else Some (Printf.sprintf "%d:r%d/b%d/d%d" pid r b dr))
      in
      if rows = [] then "" else " | peers " ^ String.concat " " rows
    in
    (* Event-driven runtime health, present only under --io-mode reactor:
       registered fds and timer-queue depth across all loops, loop
       iterations, and the client write-buffer high-water mark. *)
    let reactor_part =
      if not (List.mem_assoc "reactor/loops" merged) then ""
      else
        Printf.sprintf " | reactor fds=%d timers=%d loops=%d errs=%d wbuf<=%dB"
          (R.get merged "reactor/fds")
          (R.get merged "reactor/timers")
          (R.get merged "reactor/loops")
          (R.get merged "reactor/handler_errors")
          (max_over "service/client_wbuf_hwm")
    in
    (* Decision-path counters, named through the one shared provenance
       mapping (a new provenance variant shows up here automatically). *)
    let prov_part =
      String.concat " "
        (List.map
           (fun p ->
             let name = PL.metric_of_provenance p in
             Printf.sprintf "%s=%d" name (R.get merged ("service/" ^ name)))
           PL.all_provenances)
    in
    Printf.printf
      "[stats] slots=%d applied=%d busy=%d lag=%d | %s | %s | net reconn=%d backoff=%d \
       drop=%d%s%s\n%!"
      (R.get merged "service/committed_slots")
      (R.get merged "service/applied")
      (R.get merged "service/busy_rejections")
      (max_over "service/apply_lag") prov_part wal_part
      (R.get merged "net/reconnects")
      (R.get merged "net/backoffs")
      (R.get merged "net/drops") peer_part reactor_part

  let serve_one opts =
    let d = launch opts in
    Printf.printf
      "service up: n=%d t=%d protocol=%s pair=%s durability=%s io=%s dissemination=%s\n"
      opts.n opts.t L.name opts.pair_name
      (match opts.data_dir with Some dir -> dir | None -> "off")
      (Dex_runtime.Transport.io_mode_to_string opts.io_mode)
      (Dex_erasure.Dissemination.to_string opts.dissemination);
    print_ports d;
    let heartbeat = if opts.stats_every > 0.0 then opts.stats_every else 10.0 in
    let report () = if opts.stats_every > 0.0 then stats_line d else print_stats d in
    if opts.duration > 0.0 then begin
      let rec wait left =
        if left > 0.0 then begin
          let step = Float.min heartbeat left in
          Thread.delay step;
          if left -. step > 0.0 then report ();
          wait (left -. step)
        end
      in
      wait opts.duration;
      print_stats d;
      S.shutdown d;
      `Ok ()
    end
    else begin
      (* Run until killed, with a periodic heartbeat. *)
      while true do
        Thread.delay heartbeat;
        report ()
      done;
      `Ok ()
    end

  let smoke_one opts =
    let d = launch opts in
    Printf.printf
      "smoke: n=%d t=%d protocol=%s pair=%s dissemination=%s value-bytes=%d mute=[%s] \
       equivocate=[%s]\n%!"
      opts.n opts.t L.name opts.pair_name
      (Dex_erasure.Dissemination.to_string opts.dissemination)
      opts.value_bytes
      (String.concat "," (List.map string_of_int opts.mute))
      (String.concat "," (List.map string_of_int opts.equivocate));
    let client =
      Dex_service.Client.connect ~io_mode:opts.io_mode ~client:1
        (submit_ports opts (List.map snd d.S.ports))
    in
    let report =
      Dex_service.Client.Load.run ~duration:opts.duration client (workload_of opts)
    in
    Format.printf "%a@." Dex_service.Client.Load.pp_report report;
    (* Let stragglers apply before inspecting replica state. *)
    Thread.delay 0.5;
    Dex_service.Client.close client;
    List.iter (fun (_, s) -> S.stop s) d.S.servers;
    print_stats d;
    let compared, violations = S.agreement_violations d in
    let counter_of s = match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0 in
    (* Duplicate application would overshoot the number of issued Adds. *)
    let overshoot =
      List.filter (fun (_, s) -> counter_of s > report.Dex_service.Client.Load.issued) d.S.servers
    in
    let committed = report.Dex_service.Client.Load.committed in
    (* Dissemination-lane counters, summed over replicas. In coded mode the
       decode-fallback count is gated: a bounded number is legal (races
       where a batch commits before its fragments land), but a fallback per
       slot means the lane never decodes and the mode is lying. *)
    let merged = R.merge (List.map (fun (_, s) -> R.snapshot (S.metrics s)) d.S.servers) in
    let fallbacks = R.get merged "erasure/decode_fallbacks" in
    Printf.printf
      "dissemination: fetch_rtts=%d fetch_bytes=%d frag_recv=%d decodes=%d \
       decode_failures=%d fallbacks=%d bytes_saved=%d\n%!"
      (R.get merged "service/fetch_rtts")
      (R.get merged "service/fetch_bytes")
      (R.get merged "erasure/frag_recv")
      (R.get merged "erasure/decodes")
      (R.get merged "erasure/decode_failures")
      fallbacks
      (R.get merged "erasure/bytes_saved");
    let fallback_bound = max 20 (committed / 10) in
    let coded = Dex_erasure.Dissemination.(equal opts.dissemination Coded) in
    Dex_runtime.Cluster.shutdown d.S.cluster;
    Printf.printf "agreement: %d multiply-committed slots compared, %d violations\n" compared
      (List.length violations);
    if committed = 0 then `Error (false, "smoke failed: no commits")
    else if violations <> [] then
      `Error (false, Printf.sprintf "smoke failed: %d agreement violations" (List.length violations))
    else if coded && fallbacks > fallback_bound then
      `Error
        ( false,
          Printf.sprintf
            "smoke failed: %d decode fallbacks > bound %d (coded lane not decoding)"
            fallbacks fallback_bound )
    else if overshoot <> [] then
      `Error
        ( false,
          String.concat ", "
            (List.map
               (fun (p, s) ->
                 Printf.sprintf "smoke failed: replica %d applied %d > issued %d (duplicate apply)"
                   p (counter_of s) report.Dex_service.Client.Load.issued)
               overshoot) )
    else begin
      Printf.printf "smoke OK: %d ops committed, agreement clean, no duplicate applies\n"
        committed;
      `Ok ()
    end

  let restart_one opts =
    let data_dir =
      match opts.data_dir with
      | Some dir -> dir
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dex-restart-%d" (Unix.getpid ()))
    in
    let opts = { opts with data_dir = Some data_dir } in
    if opts.kill < 0 || opts.kill >= opts.n then failwith "restart: --kill pid out of range";
    if List.mem opts.kill opts.mute || List.mem opts.kill opts.equivocate then
      failwith "restart: --kill must name a correct replica";
    let d = launch opts in
    Printf.printf
      "restart smoke: n=%d t=%d protocol=%s pair=%s data-dir=%s kill=%d down=%.1fs duration=%.1fs\n%!"
      opts.n opts.t L.name opts.pair_name data_dir opts.kill opts.down opts.duration;
    let report = ref None in
    let loader =
      Thread.create
        (fun () ->
          let client =
            Dex_service.Client.connect ~io_mode:opts.io_mode ~client:1 (List.map snd d.S.ports)
          in
          report := Some (Dex_service.Client.Load.run ~duration:opts.duration client
                            (workload_of opts));
          Dex_service.Client.close client)
        ()
    in
    (* Crash mid-load, restart after [down] seconds of missed slots. *)
    Thread.delay (opts.duration /. 3.0);
    S.kill_replica d opts.kill;
    Printf.printf "killed replica %d (WAL abandoned mid-flight)\n%!" opts.kill;
    Thread.delay opts.down;
    let restarted = S.restart_replica d opts.kill in
    let at_restart = S.stats restarted in
    Printf.printf "restarted replica %d: replayed %d slots from disk, catching up from slot %d\n%!"
      opts.kill at_restart.S.recovered_slots (S.apply_frontier restarted);
    Thread.join loader;
    let report =
      match !report with Some r -> r | None -> failwith "restart: load thread died"
    in
    Format.printf "%a@." Dex_service.Client.Load.pp_report report;
    (* Convergence: every live replica (the restarted one included) must
       settle on the same state digest. *)
    let deadline = Unix.gettimeofday () +. 20.0 in
    let converged () =
      (not (S.catching_up restarted))
      &&
      match List.map (fun (_, s) -> S.state_digest s) d.S.servers with
      | [] -> false
      | digest :: rest -> List.for_all (fun dx -> dx = digest) rest
    in
    while (not (converged ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.1
    done;
    let did_converge = converged () in
    List.iter (fun (_, s) -> S.stop s) d.S.servers;
    print_stats d;
    let rstats = S.stats restarted in
    (* The gate's recovery report reads the unified registry: the restarted
       replica's service/durability families plus the deployment-wide net
       family (its reconnect shows up there). *)
    let reg = R.merge [ R.snapshot (S.metrics restarted); R.snapshot d.S.net_metrics ] in
    Printf.printf
      "recovery: replayed=%d catchup=%d state-transfers=%d snapshots=%d | net reconn=%d\n%!"
      (R.get reg "service/recovered_slots")
      (R.get reg "service/catchup_installed")
      (R.get reg "service/state_transfers")
      (R.get reg "durability/snapshots")
      (R.get reg "net/reconnects");
    let compared, violations = S.agreement_violations d in
    Printf.printf "agreement: %d multiply-committed slots compared, %d violations\n%!" compared
      (List.length violations);
    let committed = report.Dex_service.Client.Load.committed in
    let issued = report.Dex_service.Client.Load.issued in
    let counter_of s =
      match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0
    in
    (* Every acknowledged commit is a distinct rid applied exactly once, so
       each live replica's counter must cover all acked ops (no lost acks)
       without exceeding what was issued (no duplicate applies). *)
    let lost =
      List.filter (fun (_, s) -> counter_of s < committed) d.S.servers
    in
    let overshoot = List.filter (fun (_, s) -> counter_of s > issued) d.S.servers in
    Dex_runtime.Cluster.shutdown d.S.cluster;
    if committed = 0 then `Error (false, "restart smoke failed: no commits")
    else if violations <> [] then
      `Error
        (false, Printf.sprintf "restart smoke failed: %d agreement violations" (List.length violations))
    else if not did_converge then
      `Error
        ( false,
          Printf.sprintf "restart smoke failed: replica %d did not converge within 20s"
            opts.kill )
    else if lost <> [] then
      `Error
        ( false,
          String.concat ", "
            (List.map
               (fun (p, s) ->
                 Printf.sprintf
                   "restart smoke failed: replica %d applied %d < %d acked commits (lost acks)"
                   p (counter_of s) committed)
               lost) )
    else if overshoot <> [] then
      `Error
        ( false,
          String.concat ", "
            (List.map
               (fun (p, s) ->
                 Printf.sprintf
                   "restart smoke failed: replica %d applied %d > issued %d (duplicate apply)"
                   p (counter_of s) issued)
               overshoot) )
    else begin
      Printf.printf
        "restart smoke OK: %d ops committed, replica %d recovered (replay %d + catchup %d + xfer %d), digests converged, no lost acks, no duplicate applies\n"
        committed opts.kill rstats.S.recovered_slots rstats.S.catchup_installed
        rstats.S.state_transfers;
      `Ok ()
    end

  (* ------------------------------ gauntlet ------------------------------ *)

  (* The built-in chaos gauntlet for an n-replica run of [d] seconds: mild
     noise on every link throughout, a symmetric partition that heals, a
     kill/restart storm on one replica, then a Byzantine churn burst
     (mute -> honest -> equivocate -> honest) on another. Storm and churn
     phases do not overlap, so at most one replica is crashed or Byzantine
     at any instant — the t >= 1 envelope the service promises to absorb. *)
  let builtin_gauntlet_spec opts =
    let d = opts.duration in
    let cut_a = if opts.n >= 5 then [ 0; 1 ] else [ 0 ] in
    let cut_b = List.filter (fun p -> not (List.mem p cut_a)) (List.init opts.n Fun.id) in
    let storm_pid = opts.kill in
    let churn_pid = opts.n - 2 in
    {
      FP.seed = opts.seed;
      rules =
        [
          ( FP.All,
            { FP.drop = 0.02; dup = 0.02; reorder = 0.05; delay = 0.001; jitter = 0.002 } );
        ];
      cuts =
        [
          {
            FP.cut_a;
            cut_b;
            symmetric = true;
            from_s = 0.20 *. d;
            until_s = 0.32 *. d;
          };
        ];
      storm =
        [
          { FP.s_at = 0.40 *. d; s_pid = storm_pid; s_action = FP.Kill };
          { FP.s_at = 0.55 *. d; s_pid = storm_pid; s_action = FP.Restart };
        ];
      churn =
        [
          { FP.c_at = 0.65 *. d; c_pid = churn_pid; c_mode = FP.Churn_mute };
          { FP.c_at = 0.74 *. d; c_pid = churn_pid; c_mode = FP.Churn_honest };
          { FP.c_at = 0.80 *. d; c_pid = churn_pid; c_mode = FP.Churn_equiv };
          { FP.c_at = 0.90 *. d; c_pid = churn_pid; c_mode = FP.Churn_honest };
        ];
    }

  (* The lane's expedited-path fraction of decided commits: [L.fast_path]
     selects which provenance counters count as fast (one-step for dex,
     two-step for the two-step and hbft lanes). *)
  let fast_fraction (r : Dex_service.Client.Load.report) =
    let count p =
      match p with
      | PL.One_step -> r.Dex_service.Client.Load.one_step
      | PL.Two_step -> r.Dex_service.Client.Load.two_step
      | PL.Underlying -> r.Dex_service.Client.Load.underlying
    in
    let decided = List.fold_left (fun acc p -> acc + count p) 0 PL.all_provenances in
    let fast =
      List.fold_left
        (fun acc p -> if L.fast_path p then acc + count p else acc)
        0 PL.all_provenances
    in
    if decided = 0 then 0.0 else float_of_int fast /. float_of_int decided

  let pp_phase label (r : Dex_service.Client.Load.report) =
    let lat =
      match r.Dex_service.Client.Load.latency with
      | Some s -> Printf.sprintf " p50=%.2fms p99=%.2fms" s.Dex_metrics.Stats.p50 s.p99
      | None -> ""
    in
    Printf.printf
      "[%s] committed=%d failed=%d fast-path=%.1f%% (1s=%d 2s=%d und=%d)%s thrpt=%.0f/s\n%!"
      label r.Dex_service.Client.Load.committed r.failed
      (100.0 *. fast_fraction r)
      r.Dex_service.Client.Load.one_step r.two_step r.underlying lat r.throughput

  (* One load phase: launch (optionally chaos-wrapped), drive a closed-loop
     client for the full duration while the plan's storm/churn schedule is
     executed on a side thread, then stop, audit (agreement + duplicate
     applies) and tear down. *)
  let drive_phase opts ~roles ~chaos ~data_dir =
    let opts = { opts with data_dir } in
    let d = launch ~roles ?chaos opts in
    let sched_err = ref None in
    let scheduler =
      match chaos with
      | None -> None
      | Some _ ->
        Some
          (Thread.create
             (fun () ->
               try S.run_chaos_schedule d
               with e -> sched_err := Some (Printexc.to_string e))
             ())
    in
    let client =
      Dex_service.Client.connect ~io_mode:opts.io_mode ~client:1 (List.map snd d.S.ports)
    in
    let report =
      Dex_service.Client.Load.run ~duration:opts.duration client (workload_of opts)
    in
    Dex_service.Client.close client;
    Option.iter Thread.join scheduler;
    (* Stragglers settle under honest behaviour: a plan may end mid-churn. *)
    List.iter (fun (_, cell) -> cell := Dex_net.Adversary.Churn_honest) d.S.churn_cells;
    Thread.delay 0.5;
    List.iter (fun (_, s) -> S.stop s) d.S.servers;
    let compared, violations = S.agreement_violations d in
    let counter_of s =
      match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0
    in
    let overshoot =
      List.filter
        (fun (_, s) -> counter_of s > report.Dex_service.Client.Load.issued)
        d.S.servers
    in
    Dex_runtime.Cluster.shutdown d.S.cluster;
    (report, compared, violations, overshoot, !sched_err)

  let gauntlet_one opts =
    let spec =
      match opts.chaos_plan with
      | Some file -> FP.load ~file
      | None -> builtin_gauntlet_spec opts
    in
    (match FP.validate ~n:opts.n ~t:opts.t spec with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "gauntlet: invalid fault plan: %s" e));
    let churn_pids =
      List.sort_uniq compare (List.map (fun e -> e.FP.c_pid) spec.FP.churn)
    in
    let storm_pids =
      List.sort_uniq compare (List.map (fun e -> e.FP.s_pid) spec.FP.storm)
    in
    (match List.filter (fun p -> List.mem p churn_pids) storm_pids with
    | [] -> ()
    | clash ->
      failwith
        (Printf.sprintf
           "gauntlet: pids %s appear in both storm and churn schedules — a restarted \
            replica loses its churn wrapper"
           (String.concat "," (List.map string_of_int clash))));
    let roles p = if List.mem p churn_pids then Dex_service.Server.Churn else roles_of opts p in
    (* Crash-restart recovers from disk: default to a scratch data dir. *)
    let base_dir =
      match opts.data_dir with
      | Some dir -> dir
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dex-gauntlet-%d" (Unix.getpid ()))
    in
    Printf.printf
      "gauntlet: n=%d t=%d protocol=%s pair=%s io=%s dissemination=%s duration=%.1fs plan=%s (%d \
       rules, %d cuts, %d storm, %d churn; seed %d)\n%!"
      opts.n opts.t L.name opts.pair_name
      (Dex_runtime.Transport.io_mode_to_string opts.io_mode)
      (Dex_erasure.Dissemination.to_string opts.dissemination)
      opts.duration
      (match opts.chaos_plan with Some f -> f | None -> "builtin")
      (List.length spec.FP.rules) (List.length spec.FP.cuts) (List.length spec.FP.storm)
      (List.length spec.FP.churn) spec.FP.seed;
    (* Clean baseline first: same config, same load, no faults — the
       reference one-step fraction and latency profile. *)
    let base_report, base_compared, base_viol, base_over, _ =
      drive_phase opts
        ~roles:(fun _ -> Dex_service.Server.Correct)
        ~chaos:None
        ~data_dir:(Some (Filename.concat base_dir "baseline"))
    in
    pp_phase "baseline" base_report;
    let chaos_reg = R.create () in
    let plan = FP.make ~metrics:chaos_reg spec in
    let report, compared, violations, overshoot, sched_err =
      drive_phase opts ~roles ~chaos:(Some plan)
        ~data_dir:(Some (Filename.concat base_dir "chaos"))
    in
    pp_phase "chaos" report;
    Printf.printf "[chaos] injected: %s\n%!"
      (Format.asprintf "%a" FP.pp_counts (FP.counts plan));
    Printf.printf
      "agreement: baseline %d slots compared (%d violations), chaos %d slots compared (%d \
       violations)\n%!"
      base_compared (List.length base_viol) compared (List.length violations);
    let base_frac = fast_fraction base_report and chaos_frac = fast_fraction report in
    Printf.printf "fast-path fraction: baseline %.1f%% -> chaos %.1f%%\n%!"
      (100.0 *. base_frac) (100.0 *. chaos_frac);
    let committed = report.Dex_service.Client.Load.committed in
    if base_report.Dex_service.Client.Load.committed = 0 then
      `Error (false, "gauntlet failed: baseline committed nothing")
    else if committed = 0 then `Error (false, "gauntlet failed: no commits under chaos")
    else if base_viol <> [] || violations <> [] then
      `Error
        ( false,
          Printf.sprintf "gauntlet failed: %d agreement violations"
            (List.length base_viol + List.length violations) )
    else if base_over <> [] || overshoot <> [] then
      `Error
        ( false,
          Printf.sprintf "gauntlet failed: %d replicas overshot issued ops (duplicate apply)"
            (List.length base_over + List.length overshoot) )
    else if sched_err <> None then
      `Error
        (false, Printf.sprintf "gauntlet failed: schedule driver: %s" (Option.get sched_err))
    else begin
      Printf.printf
        "gauntlet OK: survived %d committed ops under chaos, agreement clean, no duplicate \
         applies\n"
        committed;
      `Ok ()
    end

  (* --------------------------- sharded variants --------------------------- *)

  (* `--shards N` (N > 1) lifts every command over a {!G.t} group set: the
     same gates as the single-group lane, applied per shard, plus the
     router's own invariants (zero misroutes, every shard takes work). *)

  let print_ports_set g =
    Array.iteri
      (fun i d ->
        List.iter
          (fun (p, port) -> Printf.printf "shard %d replica %d: 127.0.0.1:%d\n%!" i p port)
          d.S.ports)
      (G.deployments g)

  let print_stats_set g =
    Array.iteri
      (fun i d ->
        List.iter
          (fun (p, s) -> Format.printf "shard %d replica %d: %a@." i p S.pp_stats (S.stats s))
          d.S.servers)
      (G.deployments g)

  (* The sharded `--stats` heartbeat off {!G.snapshot}: per-shard service
     totals under their [shard<i>/] prefixes, then the shared mesh's
     unprefixed [net/*] family. *)
  let stats_line_set g =
    let snap = G.snapshot g in
    let shard_part i =
      let get name = R.get snap (Printf.sprintf "shard%d/%s" i name) in
      let wal =
        if not (List.mem_assoc (Printf.sprintf "shard%d/wal/appends" i) snap) then ""
        else Printf.sprintf " wal=%d" (get "wal/appends")
      in
      Printf.sprintf "s%d slots=%d applied=%d busy=%d%s" i
        (get "service/committed_slots")
        (get "service/applied")
        (get "service/busy_rejections")
        wal
    in
    let parts = List.init (G.shard_count g) shard_part in
    Printf.printf "[stats] %s | net reconn=%d backoff=%d drop=%d\n%!"
      (String.concat " | " parts) (R.get snap "net/reconnects") (R.get snap "net/backoffs")
      (R.get snap "net/drops")

  let counter_of_s s =
    match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0

  (* Per-shard audit: each group's agreement invariant, and no replica of
     shard [i] applying more Adds than the router routed to shard [i]. *)
  let audit_set g (report : Router.Load.report) =
    let viols = G.agreement_violations g in
    let overshoot = ref [] in
    Array.iteri
      (fun i d ->
        let issued = report.Router.Load.per_shard.(i).Router.Load.s_issued in
        List.iter
          (fun (p, s) ->
            if counter_of_s s > issued then
              overshoot := (i, p, counter_of_s s, issued) :: !overshoot)
          d.S.servers)
      (G.deployments g);
    (viols, List.rev !overshoot)

  let total_viol vs = Array.fold_left (fun acc (_, v) -> acc + List.length v) 0 vs

  let print_agreement_set ?(tag = "") viols =
    Array.iteri
      (fun i (compared, violations) ->
        Printf.printf
          "%sshard %d agreement: %d multiply-committed slots compared, %d violations\n%!" tag i
          compared (List.length violations))
      viols

  let pp_overshoot_set tag overshoot =
    String.concat ", "
      (List.map
         (fun (i, p, got, issued) ->
           Printf.sprintf "%s: shard %d replica %d applied %d > issued %d (duplicate apply)"
             tag i p got issued)
         overshoot)

  let serve_set opts =
    let g = launch_set opts in
    Printf.printf "service up: n=%d t=%d shards=%d map=%s protocol=%s pair=%s durability=%s io=%s\n"
      opts.n opts.t opts.shards
      (Dex_shard.Shard_map.to_string (G.map g))
      L.name opts.pair_name
      (match opts.data_dir with
      | Some dir -> Filename.concat dir "shard-<i>"
      | None -> "off")
      (Dex_runtime.Transport.io_mode_to_string opts.io_mode);
    print_ports_set g;
    let heartbeat = if opts.stats_every > 0.0 then opts.stats_every else 10.0 in
    let report () = if opts.stats_every > 0.0 then stats_line_set g else print_stats_set g in
    if opts.duration > 0.0 then begin
      let rec wait left =
        if left > 0.0 then begin
          let step = Float.min heartbeat left in
          Thread.delay step;
          if left -. step > 0.0 then report ();
          wait (left -. step)
        end
      in
      wait opts.duration;
      print_stats_set g;
      G.shutdown g;
      `Ok ()
    end
    else begin
      while true do
        Thread.delay heartbeat;
        report ()
      done;
      `Ok ()
    end

  let smoke_set opts =
    let g = launch_set opts in
    Printf.printf "smoke: n=%d t=%d shards=%d map=%s protocol=%s pair=%s mute=[%s] equivocate=[%s]\n%!"
      opts.n opts.t opts.shards
      (Dex_shard.Shard_map.to_string (G.map g))
      L.name opts.pair_name
      (String.concat "," (List.map string_of_int opts.mute))
      (String.concat "," (List.map string_of_int opts.equivocate));
    let router =
      Router.connect ~io_mode:opts.io_mode ~map:(G.map g) ~client:1
        (Array.to_list (G.ports g))
    in
    let report =
      Router.Load.run_many ~clients:(16 * opts.shards) ~duration:opts.duration router
        (fun _ -> Sm.Add ("k", 1))
    in
    Format.printf "%a@." Router.Load.pp_report report;
    (* Let stragglers apply before inspecting replica state. *)
    Thread.delay 0.5;
    Router.close router;
    Array.iter (fun d -> List.iter (fun (_, s) -> S.stop s) d.S.servers) (G.deployments g);
    let viols, overshoot = audit_set g report in
    let empty_shards =
      List.filter
        (fun i -> report.Router.Load.per_shard.(i).Router.Load.s_committed = 0)
        (List.init opts.shards Fun.id)
    in
    G.shutdown g;
    print_agreement_set viols;
    let committed = report.Router.Load.agg.Dex_service.Client.Load.committed in
    if committed = 0 then `Error (false, "smoke failed: no commits")
    else if report.Router.Load.misroutes > 0 then
      `Error
        (false, Printf.sprintf "smoke failed: %d misrouted replies" report.Router.Load.misroutes)
    else if empty_shards <> [] then
      `Error
        ( false,
          Printf.sprintf "smoke failed: shards [%s] committed nothing"
            (String.concat "," (List.map string_of_int empty_shards)) )
    else if total_viol viols > 0 then
      `Error (false, Printf.sprintf "smoke failed: %d agreement violations" (total_viol viols))
    else if overshoot <> [] then `Error (false, pp_overshoot_set "smoke failed" overshoot)
    else begin
      Printf.printf
        "smoke OK: %d ops committed across %d shards, 0 misroutes, agreement clean on every \
         shard, no duplicate applies\n"
        committed opts.shards;
      `Ok ()
    end

  let restart_set opts =
    let data_dir =
      match opts.data_dir with
      | Some dir -> dir
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dex-restart-shards-%d" (Unix.getpid ()))
    in
    let opts = { opts with data_dir = Some data_dir } in
    if opts.kill < 0 || opts.kill >= opts.n then failwith "restart: --kill pid out of range";
    if List.mem opts.kill opts.mute || List.mem opts.kill opts.equivocate then
      failwith "restart: --kill must name a correct replica";
    let g = launch_set opts in
    Printf.printf
      "restart smoke: n=%d t=%d shards=%d protocol=%s pair=%s data-dir=%s kill=shard0/%d \
       down=%.1fs duration=%.1fs\n%!"
      opts.n opts.t opts.shards L.name opts.pair_name data_dir opts.kill opts.down
      opts.duration;
    let report = ref None in
    let loader =
      Thread.create
        (fun () ->
          let router =
            Router.connect ~io_mode:opts.io_mode ~map:(G.map g) ~client:1
              (Array.to_list (G.ports g))
          in
          report :=
            Some
              (Router.Load.run_many ~clients:(16 * opts.shards) ~duration:opts.duration
                 router
                 (fun _ -> Sm.Add ("k", 1)));
          Router.close router)
        ()
    in
    (* Crash shard 0's replica mid-load: the crash and its recovery traffic
       must stay inside shard 0 — every other group keeps its own WAL root
       and keeps committing untouched. *)
    Thread.delay (opts.duration /. 3.0);
    G.kill_replica g ~shard:0 opts.kill;
    Printf.printf "killed shard 0 replica %d (WAL abandoned mid-flight)\n%!" opts.kill;
    Thread.delay opts.down;
    let restarted = G.restart_replica g ~shard:0 opts.kill in
    let at_restart = S.stats restarted in
    Printf.printf
      "restarted shard 0 replica %d: replayed %d slots from disk, catching up from slot %d\n%!"
      opts.kill at_restart.S.recovered_slots (S.apply_frontier restarted);
    Thread.join loader;
    let report =
      match !report with Some r -> r | None -> failwith "restart: load thread died"
    in
    Format.printf "%a@." Router.Load.pp_report report;
    let d0 = G.deployment g 0 in
    let deadline = Unix.gettimeofday () +. 20.0 in
    let converged () =
      (not (S.catching_up restarted))
      &&
      match List.map (fun (_, s) -> S.state_digest s) d0.S.servers with
      | [] -> false
      | digest :: rest -> List.for_all (fun dx -> dx = digest) rest
    in
    while (not (converged ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.1
    done;
    let did_converge = converged () in
    Array.iter (fun d -> List.iter (fun (_, s) -> S.stop s) d.S.servers) (G.deployments g);
    let reg = R.merge [ R.snapshot (S.metrics restarted); R.snapshot d0.S.net_metrics ] in
    Printf.printf
      "recovery: replayed=%d catchup=%d state-transfers=%d snapshots=%d | net reconn=%d\n%!"
      (R.get reg "service/recovered_slots")
      (R.get reg "service/catchup_installed")
      (R.get reg "service/state_transfers")
      (R.get reg "durability/snapshots")
      (R.get reg "net/reconnects");
    let viols, overshoot = audit_set g report in
    (* Shard 0's acked commits must survive the crash on every shard-0
       replica, the restarted one included. *)
    let committed0 = report.Router.Load.per_shard.(0).Router.Load.s_committed in
    let lost = List.filter (fun (_, s) -> counter_of_s s < committed0) d0.S.servers in
    G.shutdown g;
    print_agreement_set viols;
    let committed = report.Router.Load.agg.Dex_service.Client.Load.committed in
    if committed = 0 then `Error (false, "restart smoke failed: no commits")
    else if report.Router.Load.misroutes > 0 then
      `Error
        ( false,
          Printf.sprintf "restart smoke failed: %d misrouted replies"
            report.Router.Load.misroutes )
    else if total_viol viols > 0 then
      `Error
        ( false,
          Printf.sprintf "restart smoke failed: %d agreement violations" (total_viol viols) )
    else if not did_converge then
      `Error
        ( false,
          Printf.sprintf "restart smoke failed: shard 0 replica %d did not converge within 20s"
            opts.kill )
    else if lost <> [] then
      `Error
        ( false,
          String.concat ", "
            (List.map
               (fun (p, s) ->
                 Printf.sprintf
                   "restart smoke failed: shard 0 replica %d applied %d < %d acked commits \
                    (lost acks)"
                   p (counter_of_s s) committed0)
               lost) )
    else if overshoot <> [] then
      `Error (false, pp_overshoot_set "restart smoke failed" overshoot)
    else begin
      let rstats = S.stats restarted in
      Printf.printf
        "restart smoke OK: %d ops committed across %d shards, shard 0 replica %d recovered \
         (replay %d + catchup %d + xfer %d), digests converged, no lost acks, no duplicate \
         applies\n"
        committed opts.shards opts.kill rstats.S.recovered_slots rstats.S.catchup_installed
        rstats.S.state_transfers;
      `Ok ()
    end

  (* One sharded load phase: the fault plan (if any) fronts shard 0's
     transport view only; the load covers every shard through the router. *)
  let drive_phase_set opts ~roles ~chaos ~data_dir =
    let opts = { opts with data_dir } in
    let g = launch_set ~roles ?chaos:(Option.map (fun p -> (0, p)) chaos) opts in
    let sched_err = ref None in
    let scheduler =
      match chaos with
      | None -> None
      | Some _ ->
        Some
          (Thread.create
             (fun () ->
               try G.run_chaos_schedule g
               with e -> sched_err := Some (Printexc.to_string e))
             ())
    in
    let router =
      Router.connect ~io_mode:opts.io_mode ~map:(G.map g) ~client:1
        (Array.to_list (G.ports g))
    in
    let report =
      Router.Load.run_many ~clients:(16 * opts.shards) ~duration:opts.duration router
        (fun _ -> Sm.Add ("k", 1))
    in
    Router.close router;
    Option.iter Thread.join scheduler;
    Array.iter
      (fun d ->
        List.iter (fun (_, cell) -> cell := Dex_net.Adversary.Churn_honest) d.S.churn_cells)
      (G.deployments g);
    Thread.delay 0.5;
    Array.iter (fun d -> List.iter (fun (_, s) -> S.stop s) d.S.servers) (G.deployments g);
    let viols, overshoot = audit_set g report in
    G.shutdown g;
    (report, viols, overshoot, !sched_err)

  let gauntlet_set opts =
    let spec =
      match opts.chaos_plan with
      | Some file -> FP.load ~file
      | None -> builtin_gauntlet_spec opts
    in
    (match FP.validate ~n:opts.n ~t:opts.t spec with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "gauntlet: invalid fault plan: %s" e));
    let churn_pids = List.sort_uniq compare (List.map (fun e -> e.FP.c_pid) spec.FP.churn) in
    let storm_pids = List.sort_uniq compare (List.map (fun e -> e.FP.s_pid) spec.FP.storm) in
    (match List.filter (fun p -> List.mem p churn_pids) storm_pids with
    | [] -> ()
    | clash ->
      failwith
        (Printf.sprintf
           "gauntlet: pids %s appear in both storm and churn schedules — a restarted \
            replica loses its churn wrapper"
           (String.concat "," (List.map string_of_int clash))));
    (* The whole plan lands on shard 0 — its links, its storm, its churn.
       Shards 1..k-1 run clean, and the blast-radius gate below holds them
       to keep committing throughout. *)
    let roles ~shard p =
      if shard = 0 && List.mem p churn_pids then Dex_service.Server.Churn else roles_of opts p
    in
    let base_dir =
      match opts.data_dir with
      | Some dir -> dir
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dex-gauntlet-shards-%d" (Unix.getpid ()))
    in
    Printf.printf
      "gauntlet: n=%d t=%d shards=%d (chaos confined to shard 0) protocol=%s pair=%s io=%s \
       duration=%.1fs plan=%s (%d rules, %d cuts, %d storm, %d churn; seed %d)\n%!"
      opts.n opts.t opts.shards L.name opts.pair_name
      (Dex_runtime.Transport.io_mode_to_string opts.io_mode)
      opts.duration
      (match opts.chaos_plan with Some f -> f | None -> "builtin")
      (List.length spec.FP.rules) (List.length spec.FP.cuts) (List.length spec.FP.storm)
      (List.length spec.FP.churn) spec.FP.seed;
    let base_report, base_viols, base_over, _ =
      drive_phase_set opts
        ~roles:(fun ~shard:_ _ -> Dex_service.Server.Correct)
        ~chaos:None
        ~data_dir:(Some (Filename.concat base_dir "baseline"))
    in
    pp_phase "baseline" base_report.Router.Load.agg;
    let chaos_reg = R.create () in
    let plan = FP.make ~metrics:chaos_reg spec in
    let report, viols, overshoot, sched_err =
      drive_phase_set opts ~roles ~chaos:(Some plan)
        ~data_dir:(Some (Filename.concat base_dir "chaos"))
    in
    pp_phase "chaos" report.Router.Load.agg;
    Printf.printf "[chaos] injected: %s\n%!"
      (Format.asprintf "%a" FP.pp_counts (FP.counts plan));
    Array.iteri
      (fun i st ->
        Printf.printf "shard %d under chaos: issued=%d committed=%d%s\n%!" i
          st.Router.Load.s_issued st.Router.Load.s_committed
          (if i = 0 then " (chaos target)" else ""))
      report.Router.Load.per_shard;
    print_agreement_set ~tag:"[baseline] " base_viols;
    print_agreement_set ~tag:"[chaos] " viols;
    let base_frac = fast_fraction base_report.Router.Load.agg in
    let chaos_frac = fast_fraction report.Router.Load.agg in
    Printf.printf "fast-path fraction: baseline %.1f%% -> chaos %.1f%%\n%!"
      (100.0 *. base_frac) (100.0 *. chaos_frac);
    (* Blast radius: chaos was injected into shard 0 only, so every healthy
       shard must have kept committing for the whole phase. *)
    let dead_healthy =
      List.filter
        (fun i -> report.Router.Load.per_shard.(i).Router.Load.s_committed = 0)
        (List.tl (List.init opts.shards Fun.id))
    in
    let committed = report.Router.Load.agg.Dex_service.Client.Load.committed in
    if base_report.Router.Load.agg.Dex_service.Client.Load.committed = 0 then
      `Error (false, "gauntlet failed: baseline committed nothing")
    else if committed = 0 then `Error (false, "gauntlet failed: no commits under chaos")
    else if base_report.Router.Load.misroutes > 0 || report.Router.Load.misroutes > 0 then
      `Error
        ( false,
          Printf.sprintf "gauntlet failed: %d misrouted replies"
            (base_report.Router.Load.misroutes + report.Router.Load.misroutes) )
    else if total_viol base_viols > 0 || total_viol viols > 0 then
      `Error
        ( false,
          Printf.sprintf "gauntlet failed: %d agreement violations"
            (total_viol base_viols + total_viol viols) )
    else if base_over <> [] || overshoot <> [] then
      `Error
        ( false,
          Printf.sprintf "gauntlet failed: %d replicas overshot issued ops (duplicate apply)"
            (List.length base_over + List.length overshoot) )
    else if dead_healthy <> [] then
      `Error
        ( false,
          Printf.sprintf
            "gauntlet failed: healthy shards [%s] committed nothing while shard 0 took the \
             chaos (blast radius escaped)"
            (String.concat "," (List.map string_of_int dead_healthy)) )
    else if sched_err <> None then
      `Error
        (false, Printf.sprintf "gauntlet failed: schedule driver: %s" (Option.get sched_err))
    else begin
      Printf.printf
        "gauntlet OK: %d ops committed with chaos confined to shard 0; every healthy shard \
         kept committing, agreement clean on all shards, no duplicate applies\n"
        committed;
      `Ok ()
    end

  let serve opts = if opts.shards > 1 then serve_set opts else serve_one opts
  let smoke opts = if opts.shards > 1 then smoke_set opts else smoke_one opts
  let restart opts = if opts.shards > 1 then restart_set opts else restart_one opts
  let gauntlet opts = if opts.shards > 1 then gauntlet_set opts else gauntlet_one opts
end

module Run_dex_oracle = Run (Dex_core.Dex.Lane (Uc_oracle))
module Run_dex_leader = Run (Dex_core.Dex.Lane (Uc_leader))
module Run_kc_oracle = Run (Dex_baselines.Kuo_chen.Lane (Uc_oracle))
module Run_kc_leader = Run (Dex_baselines.Kuo_chen.Lane (Uc_leader))
module Run_hbft_oracle = Run (Dex_baselines.Hbft.Lane (Uc_oracle))
module Run_hbft_leader = Run (Dex_baselines.Hbft.Lane (Uc_leader))

type outcome = [ `Ok of unit | `Error of bool * string ]

(* One record of entry points per lane x uc instantiation, so subcommand
   dispatch is a value-level lookup over the six functor applications. *)
type runner = {
  r_serve : opts -> outcome;
  r_smoke : opts -> outcome;
  r_restart : opts -> outcome;
  r_gauntlet : opts -> outcome;
}

let guard f opts : outcome =
  try f opts with
  | Pair.Assumption_violated m -> `Error (false, m)
  | Failure m -> `Error (false, m)
  | Invalid_argument m -> `Error (false, m)

let runner_dex_oracle =
  { r_serve = guard Run_dex_oracle.serve; r_smoke = guard Run_dex_oracle.smoke;
    r_restart = guard Run_dex_oracle.restart; r_gauntlet = guard Run_dex_oracle.gauntlet }

let runner_dex_leader =
  { r_serve = guard Run_dex_leader.serve; r_smoke = guard Run_dex_leader.smoke;
    r_restart = guard Run_dex_leader.restart; r_gauntlet = guard Run_dex_leader.gauntlet }

let runner_kc_oracle =
  { r_serve = guard Run_kc_oracle.serve; r_smoke = guard Run_kc_oracle.smoke;
    r_restart = guard Run_kc_oracle.restart; r_gauntlet = guard Run_kc_oracle.gauntlet }

let runner_kc_leader =
  { r_serve = guard Run_kc_leader.serve; r_smoke = guard Run_kc_leader.smoke;
    r_restart = guard Run_kc_leader.restart; r_gauntlet = guard Run_kc_leader.gauntlet }

let runner_hbft_oracle =
  { r_serve = guard Run_hbft_oracle.serve; r_smoke = guard Run_hbft_oracle.smoke;
    r_restart = guard Run_hbft_oracle.restart; r_gauntlet = guard Run_hbft_oracle.gauntlet }

let runner_hbft_leader =
  { r_serve = guard Run_hbft_leader.serve; r_smoke = guard Run_hbft_leader.smoke;
    r_restart = guard Run_hbft_leader.restart; r_gauntlet = guard Run_hbft_leader.gauntlet }

let dispatch sel uc protocol opts : unit Term.ret =
  match (PL.id_of_string protocol, uc) with
  | None, _ ->
    `Error
      (false, Printf.sprintf "unknown protocol %S (use dex, two-step or hbft)" protocol)
  | Some id, ("oracle" | "leader") ->
    if String.equal uc "leader" then
      (* Round timeouts in seconds on the thread runtime. *)
      Uc_leader.timeout_base := 0.25;
    let r =
      match (id, uc) with
      | PL.Dex, "oracle" -> runner_dex_oracle
      | PL.Dex, _ -> runner_dex_leader
      | PL.Kuo_chen, "oracle" -> runner_kc_oracle
      | PL.Kuo_chen, _ -> runner_kc_leader
      | PL.Hbft, "oracle" -> runner_hbft_oracle
      | PL.Hbft, _ -> runner_hbft_leader
    in
    (sel r opts :> unit Term.ret)
  | _, other -> `Error (false, Printf.sprintf "unknown uc %S (use oracle or leader)" other)

(* ----------------------------- options ----------------------------- *)

let pid_list_t names doc =
  let conv_pids =
    let parse s =
      if String.trim s = "" then Ok []
      else
        try Ok (List.map int_of_string (String.split_on_char ',' s))
        with Failure _ -> Error (`Msg "expected a comma-separated pid list")
    in
    Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (String.concat "," (List.map string_of_int l)))
  in
  Arg.(value & opt conv_pids [] & info names ~doc)

let opts_t ~default_n ~default_t ~default_duration ~default_mute =
  let n_t = Arg.(value & opt int default_n & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let t_t = Arg.(value & opt int default_t & info [ "t"; "faults-bound" ] ~doc:"Failure bound.") in
  let pair_t =
    Arg.(value & opt string "freq" & info [ "pair" ] ~doc:"Condition pair: freq or prv[:M].")
  in
  let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let window_t = Arg.(value & opt int 8 & info [ "window" ] ~doc:"Log pipelining window.") in
  let batch_delay_t =
    Arg.(value & opt float 0.004 & info [ "batch-delay" ] ~doc:"Batcher tick (seconds).")
  in
  let settle_t =
    Arg.(
      value & opt float 0.002
      & info [ "settle" ] ~doc:"Min request age before proposal (seconds).")
  in
  let batch_cap_t =
    Arg.(value & opt int 256 & info [ "batch-cap" ] ~doc:"Max requests per batch.")
  in
  let queue_cap_t =
    Arg.(value & opt int 4096 & info [ "queue-cap" ] ~doc:"Admission queue bound.")
  in
  let port_base_t =
    Arg.(value & opt int 0 & info [ "port-base" ] ~doc:"Service port base (0 = ephemeral).")
  in
  let duration_t =
    Arg.(
      value
      & opt float default_duration
      & info [ "duration" ] ~doc:"Run time in seconds (serve: 0 = forever).")
  in
  let mute_t = pid_list_t [ "mute" ] "Comma-separated pids to run mute (crashed)." in
  let equivocate_t = pid_list_t [ "equivocate" ] "Comma-separated pids to run as equivocators." in
  let data_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ]
          ~doc:
            "Enable the durability lane: per-replica WAL + snapshots under \
             $(docv)/replica-<pid>, persist-before-reply, recovery on restart.")
  in
  let stats_every_t =
    Arg.(
      value & opt float 0.0
      & info [ "stats" ]
          ~doc:"Print a one-line service/WAL/link counter report every $(docv) seconds.")
  in
  let no_group_commit_t =
    Arg.(
      value & flag
      & info [ "no-group-commit" ] ~doc:"Fsync the WAL inline on every applied slot.")
  in
  let snapshot_every_t =
    Arg.(
      value & opt int 4096
      & info [ "snapshot-every" ] ~doc:"Snapshot cadence in applied slots.")
  in
  let kill_t =
    Arg.(value & opt int 2 & info [ "kill" ] ~doc:"Replica to crash (restart command).")
  in
  let down_t =
    Arg.(
      value & opt float 1.0
      & info [ "down" ] ~doc:"Seconds the crashed replica stays down (restart command).")
  in
  let io_mode_t =
    let conv_mode =
      let parse s =
        match Dex_runtime.Transport.io_mode_of_string s with
        | Some m -> Ok m
        | None -> Error (`Msg (Printf.sprintf "unknown io mode %S (use threads or reactor)" s))
      in
      Arg.conv
        (parse, fun ppf m -> Format.pp_print_string ppf (Dex_runtime.Transport.io_mode_to_string m))
    in
    Arg.(
      value
      & opt conv_mode Dex_runtime.Transport.Reactor
      & info [ "io-mode" ]
          ~doc:
            "I/O runtime: $(b,reactor) (event loop per replica, nonblocking sockets, frame \
             coalescing, timer-driven batching and group commit) or $(b,threads) \
             (thread-per-connection with condvar mailboxes).")
  in
  let chaos_plan_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos-plan" ]
          ~doc:
            "Fault plan file to replay (gauntlet command) instead of the built-in chaos \
             script — e.g. one emitted by dex_mc --worst-case --plan-out.")
  in
  let shards_t =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Partition the keyspace over $(docv) independent consensus groups of n replicas \
             each, all tenants of one shared runtime (one TCP mesh, shared event loops), \
             fronted by a shard router. Roles (--mute/--equivocate) apply within every \
             group; gauntlet chaos is confined to shard 0.")
  in
  let dissemination_t =
    let conv_mode =
      let parse s =
        match Dex_erasure.Dissemination.of_string s with
        | Ok m -> Ok m
        | Error e -> Error (`Msg e)
      in
      Arg.conv (parse, Dex_erasure.Dissemination.pp)
    in
    Arg.(
      value
      & opt conv_mode Dex_erasure.Dissemination.Full
      & info [ "dissemination" ]
          ~doc:
            "Batch content dissemination: $(b,full) — replicas that miss a batch fetch the \
             whole blob from a peer; $(b,coded) — proposers push one systematic \
             Reed-Solomon fragment per replica and missing content is reconstructed from \
             any n-t distinct fragments, falling back to the full lane on timeout or \
             decode failure.")
  in
  let value_bytes_t =
    Arg.(
      value & opt int 0
      & info [ "value-bytes" ]
          ~doc:
            "Drive the load with $(docv)-byte opaque blob writes instead of counter \
             increments (0 = plain increments). Exercises the large-value dissemination \
             path.")
  in
  let submit_to_t =
    Arg.(
      value & opt int 0
      & info [ "submit-to" ]
          ~doc:
            "Connect the driving client to the first $(docv) replicas only (0 or >= n: \
             all), starving the rest of direct submissions so their content arrives over \
             the dissemination lane.")
  in
  let make n t pair_name seed window batch_delay settle batch_cap queue_cap port_base duration
      mute equivocate data_dir stats_every no_group_commit snapshot_every kill down io_mode
      chaos_plan shards dissemination value_bytes submit_to =
    let mute =
      match default_mute with
      | Some default when mute = [] && equivocate = [] -> default
      | _ -> mute
    in
    let shards = max 1 shards in
    { n; t; pair_name; seed; window; batch_delay; settle; batch_cap; queue_cap; port_base;
      duration; mute; equivocate; data_dir; stats_every; group_commit = not no_group_commit;
      snapshot_every; kill; down; io_mode; chaos_plan; shards; dissemination; value_bytes;
      submit_to }
  in
  Term.(
    const make $ n_t $ t_t $ pair_t $ seed_t $ window_t $ batch_delay_t $ settle_t
    $ batch_cap_t $ queue_cap_t $ port_base_t $ duration_t $ mute_t $ equivocate_t
    $ data_dir_t $ stats_every_t $ no_group_commit_t $ snapshot_every_t $ kill_t $ down_t
    $ io_mode_t $ chaos_plan_t $ shards_t $ dissemination_t $ value_bytes_t $ submit_to_t)

let uc_t =
  Arg.(value & opt string "oracle" & info [ "uc" ] ~doc:"Underlying consensus: oracle or leader.")

let protocol_t =
  Arg.(
    value & opt string "dex"
    & info [ "protocol" ]
        ~doc:
          "Protocol lane: $(b,dex) (the paper's doubly-expedited one-step pair), \
           $(b,two-step) (Kuo-Chen two-step without recovery), or $(b,hbft) (speculative \
           coordinator ordering). All lanes run over the same log, service and \
           underlying consensus.")

(* Per-subcommand manual: every flag the shared option set accepts, grouped
   by concern, so each subcommand's --help lists the full surface. *)
let flags_man =
  [
    `S Manpage.s_options;
    `P
      "Deployment shape: $(b,-n)/$(b,--replicas) replica count; \
       $(b,-t)/$(b,--faults-bound) failure bound; $(b,--shards) independent consensus \
       groups of n replicas behind a shard router (one shared runtime); $(b,--protocol) \
       protocol lane ($(b,dex), $(b,two-step) or $(b,hbft)); $(b,--uc) underlying \
       consensus ($(b,oracle) or $(b,leader)); $(b,--pair) condition pair ($(b,freq) or \
       $(b,prv[:M])); $(b,--io-mode) I/O runtime ($(b,reactor) or $(b,threads)).";
    `P
      "Batching and admission: $(b,--window) log pipelining window; $(b,--batch-delay) \
       batcher tick; $(b,--settle) minimum request age before proposal; \
       $(b,--batch-cap) max requests per batch; $(b,--queue-cap) admission queue bound.";
    `P
      "Durability: $(b,--data-dir) WAL + snapshots + persist-before-reply; \
       $(b,--no-group-commit) inline fsync per applied slot; $(b,--snapshot-every) \
       snapshot cadence in applied slots.";
    `P
      "Dissemination and load shape: $(b,--dissemination) batch content lane ($(b,full) \
       or $(b,coded) Reed-Solomon fragments); $(b,--value-bytes) opaque blob payload \
       size for the driving load; $(b,--submit-to) restrict client submissions to the \
       first K replicas.";
    `P
      "Faults: $(b,--mute) crashed pids; $(b,--equivocate) equivocating pids; \
       $(b,--kill)/$(b,--down) crash target and downtime (restart); $(b,--chaos-plan) \
       fault plan file to replay (gauntlet).";
    `P
      "Misc: $(b,--seed) PRNG seed; $(b,--port-base) service port base; \
       $(b,--duration) run time; $(b,--stats) counter report cadence.";
  ]

let serve_cmd =
  let action uc protocol opts = dispatch (fun r -> r.r_serve) uc protocol opts in
  let term =
    Term.(
      ret
        (const action $ uc_t $ protocol_t
        $ opts_t ~default_n:4 ~default_t:0 ~default_duration:0.0 ~default_mute:None))
  in
  Cmd.v
    (Cmd.info "serve" ~man:flags_man
       ~doc:"Boot an n-replica loopback KV service and print client ports.")
    term

let smoke_cmd =
  let action uc protocol opts = dispatch (fun r -> r.r_smoke) uc protocol opts in
  let term =
    Term.(
      ret
        (const action $ uc_t $ protocol_t
        $ opts_t ~default_n:7 ~default_t:1 ~default_duration:5.0 ~default_mute:(Some [ 6 ])))
  in
  Cmd.v
    (Cmd.info "smoke" ~man:flags_man
       ~doc:
         "CI gate: boot a deployment (default: n=7 t=1, replica 6 mute), drive it with a \
          closed-loop client, and fail on zero commits, agreement violations, or duplicate \
          application.")
    term

let restart_cmd =
  let action uc protocol opts = dispatch (fun r -> r.r_restart) uc protocol opts in
  let term =
    Term.(
      ret
        (const action $ uc_t $ protocol_t
        $ opts_t ~default_n:4 ~default_t:0 ~default_duration:9.0 ~default_mute:None))
  in
  Cmd.v
    (Cmd.info "restart" ~man:flags_man
       ~doc:
         "Durability gate: boot a durable deployment (default n=4 t=0), crash replica \
          --kill mid-load (WAL abandoned), restart it after --down seconds, and fail \
          unless it recovers, catches up to identical state, and the run shows zero \
          agreement violations, zero lost acknowledged commits and zero duplicate \
          applies.")
    term

let gauntlet_cmd =
  let action uc protocol opts = dispatch (fun r -> r.r_gauntlet) uc protocol opts in
  let term =
    Term.(
      ret
        (const action $ uc_t $ protocol_t
        $ opts_t ~default_n:7 ~default_t:1 ~default_duration:12.0 ~default_mute:None))
  in
  Cmd.v
    (Cmd.info "gauntlet" ~man:flags_man
       ~doc:
         "Chaos gate: run a clean baseline, then replay a deterministic fault plan — link \
          noise, a healing partition, a kill/restart storm and a Byzantine churn burst \
          (built-in script, or --chaos-plan FILE) — against a live deployment under \
          closed-loop load. Reports the one-step fraction and latency against the \
          baseline; fails on zero commits, agreement violations, duplicate applies, or a \
          schedule that cannot be driven.")
    term

let () =
  let info =
    Cmd.info "dex_server" ~version:"1.0.0"
      ~doc:"Replicated key-value service over the DEX log — server and CI smoke."
  in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; smoke_cmd; restart_cmd; gauntlet_cmd ]))
