(* Replicated KV service over the DEX log — server side.

   `serve` boots all n replicas of a loopback deployment in one process
   (real TCP between replicas and to clients) and prints the per-replica
   client service ports; point bin/dex_client at them.

   `smoke` is the self-contained CI gate: boot a deployment (optionally with
   mute/equivocating replicas), drive it with an in-process closed-loop
   client, and fail unless the run committed work with zero agreement
   violations and no duplicate application. *)

open Cmdliner
open Dex_condition
open Dex_underlying
module Sm = Dex_service.State_machine

type opts = {
  n : int;
  t : int;
  pair_name : string;
  seed : int;
  window : int;
  batch_delay : float;
  settle : float;
  batch_cap : int;
  queue_cap : int;
  port_base : int;
  duration : float;
  mute : int list;
  equivocate : int list;
}

let pair_of opts =
  match String.split_on_char ':' opts.pair_name with
  | [ "freq" ] -> Pair.freq ~n:opts.n ~t:opts.t
  | [ "prv" ] -> Pair.privileged ~n:opts.n ~t:opts.t ~m:0
  | [ "prv"; m ] -> Pair.privileged ~n:opts.n ~t:opts.t ~m:(int_of_string m)
  | _ -> failwith (Printf.sprintf "unknown pair %S (use freq or prv[:M])" opts.pair_name)

let roles_of opts p =
  if List.mem p opts.mute then Dex_service.Server.Mute
  else if List.mem p opts.equivocate then Dex_service.Server.Equivocator
  else Dex_service.Server.Correct

module Run (Uc : Uc_intf.S) = struct
  module S = Dex_service.Server.Make (Uc)

  let launch opts =
    let pair = pair_of opts in
    let cfg =
      S.config ~seed:opts.seed ~window:opts.window ~batch_delay:opts.batch_delay
        ~settle:opts.settle ~batch_cap:opts.batch_cap ~queue_cap:opts.queue_cap
        ~pair:(fun _ -> pair)
        ~n:opts.n ~t:opts.t ()
    in
    S.launch ~roles:(roles_of opts) ~port_base:opts.port_base cfg

  let print_ports d =
    List.iter
      (fun (p, port) -> Printf.printf "replica %d: 127.0.0.1:%d\n%!" p port)
      d.S.ports

  let print_stats d =
    List.iter
      (fun (p, s) -> Format.printf "replica %d: %a@." p S.pp_stats (S.stats s))
      d.S.servers

  let serve opts =
    let d = launch opts in
    Printf.printf "service up: n=%d t=%d uc=%s pair=%s\n" opts.n opts.t Uc.name
      opts.pair_name;
    print_ports d;
    if opts.duration > 0.0 then begin
      Thread.delay opts.duration;
      print_stats d;
      S.shutdown d;
      `Ok ()
    end
    else begin
      (* Run until killed, with a periodic stats heartbeat. *)
      while true do
        Thread.delay 10.0;
        print_stats d
      done;
      `Ok ()
    end

  let smoke opts =
    let d = launch opts in
    Printf.printf "smoke: n=%d t=%d uc=%s pair=%s mute=[%s] equivocate=[%s]\n%!" opts.n
      opts.t Uc.name opts.pair_name
      (String.concat "," (List.map string_of_int opts.mute))
      (String.concat "," (List.map string_of_int opts.equivocate));
    let client = Dex_service.Client.connect ~client:1 (List.map snd d.S.ports) in
    let report =
      Dex_service.Client.Load.run ~duration:opts.duration client (fun _ -> Sm.Add ("k", 1))
    in
    Format.printf "%a@." Dex_service.Client.Load.pp_report report;
    (* Let stragglers apply before inspecting replica state. *)
    Thread.delay 0.5;
    Dex_service.Client.close client;
    List.iter (fun (_, s) -> S.stop s) d.S.servers;
    print_stats d;
    let compared, violations = S.agreement_violations d in
    let counter_of s = match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0 in
    (* Duplicate application would overshoot the number of issued Adds. *)
    let overshoot =
      List.filter (fun (_, s) -> counter_of s > report.Dex_service.Client.Load.issued) d.S.servers
    in
    let committed = report.Dex_service.Client.Load.committed in
    Dex_runtime.Cluster.shutdown d.S.cluster;
    Printf.printf "agreement: %d multiply-committed slots compared, %d violations\n" compared
      (List.length violations);
    if committed = 0 then `Error (false, "smoke failed: no commits")
    else if violations <> [] then
      `Error (false, Printf.sprintf "smoke failed: %d agreement violations" (List.length violations))
    else if overshoot <> [] then
      `Error
        ( false,
          String.concat ", "
            (List.map
               (fun (p, s) ->
                 Printf.sprintf "smoke failed: replica %d applied %d > issued %d (duplicate apply)"
                   p (counter_of s) report.Dex_service.Client.Load.issued)
               overshoot) )
    else begin
      Printf.printf "smoke OK: %d ops committed, agreement clean, no duplicate applies\n"
        committed;
      `Ok ()
    end
end

module Run_oracle = Run (Uc_oracle)
module Run_leader = Run (Uc_leader)

let dispatch f_oracle f_leader uc opts =
  match uc with
  | "oracle" -> f_oracle opts
  | "leader" ->
    (* Round timeouts in seconds on the thread runtime. *)
    Uc_leader.timeout_base := 0.25;
    f_leader opts
  | other -> `Error (false, Printf.sprintf "unknown uc %S (use oracle or leader)" other)

(* ----------------------------- options ----------------------------- *)

let pid_list_t names doc =
  let conv_pids =
    let parse s =
      if String.trim s = "" then Ok []
      else
        try Ok (List.map int_of_string (String.split_on_char ',' s))
        with Failure _ -> Error (`Msg "expected a comma-separated pid list")
    in
    Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (String.concat "," (List.map string_of_int l)))
  in
  Arg.(value & opt conv_pids [] & info names ~doc)

let opts_t ~default_n ~default_t ~default_duration ~default_mute =
  let n_t = Arg.(value & opt int default_n & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let t_t = Arg.(value & opt int default_t & info [ "t"; "faults-bound" ] ~doc:"Failure bound.") in
  let pair_t =
    Arg.(value & opt string "freq" & info [ "pair" ] ~doc:"Condition pair: freq or prv[:M].")
  in
  let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let window_t = Arg.(value & opt int 8 & info [ "window" ] ~doc:"Log pipelining window.") in
  let batch_delay_t =
    Arg.(value & opt float 0.004 & info [ "batch-delay" ] ~doc:"Batcher tick (seconds).")
  in
  let settle_t =
    Arg.(
      value & opt float 0.002
      & info [ "settle" ] ~doc:"Min request age before proposal (seconds).")
  in
  let batch_cap_t =
    Arg.(value & opt int 256 & info [ "batch-cap" ] ~doc:"Max requests per batch.")
  in
  let queue_cap_t =
    Arg.(value & opt int 4096 & info [ "queue-cap" ] ~doc:"Admission queue bound.")
  in
  let port_base_t =
    Arg.(value & opt int 0 & info [ "port-base" ] ~doc:"Service port base (0 = ephemeral).")
  in
  let duration_t =
    Arg.(
      value
      & opt float default_duration
      & info [ "duration" ] ~doc:"Run time in seconds (serve: 0 = forever).")
  in
  let mute_t = pid_list_t [ "mute" ] "Comma-separated pids to run mute (crashed)." in
  let equivocate_t = pid_list_t [ "equivocate" ] "Comma-separated pids to run as equivocators." in
  let make n t pair_name seed window batch_delay settle batch_cap queue_cap port_base duration
      mute equivocate =
    (match default_mute with
    | Some default when mute = [] && equivocate = [] ->
      { n; t; pair_name; seed; window; batch_delay; settle; batch_cap; queue_cap; port_base;
        duration; mute = default; equivocate }
    | _ ->
      { n; t; pair_name; seed; window; batch_delay; settle; batch_cap; queue_cap; port_base;
        duration; mute; equivocate })
  in
  Term.(
    const make $ n_t $ t_t $ pair_t $ seed_t $ window_t $ batch_delay_t $ settle_t
    $ batch_cap_t $ queue_cap_t $ port_base_t $ duration_t $ mute_t $ equivocate_t)

let uc_t =
  Arg.(value & opt string "oracle" & info [ "uc" ] ~doc:"Underlying consensus: oracle or leader.")

let guard f opts =
  try f opts with
  | Pair.Assumption_violated m -> `Error (false, m)
  | Failure m -> `Error (false, m)
  | Invalid_argument m -> `Error (false, m)

let serve_cmd =
  let action uc opts = dispatch (guard Run_oracle.serve) (guard Run_leader.serve) uc opts in
  let term =
    Term.(
      ret (const action $ uc_t $ opts_t ~default_n:4 ~default_t:0 ~default_duration:0.0 ~default_mute:None))
  in
  Cmd.v (Cmd.info "serve" ~doc:"Boot an n-replica loopback KV service and print client ports.") term

let smoke_cmd =
  let action uc opts = dispatch (guard Run_oracle.smoke) (guard Run_leader.smoke) uc opts in
  let term =
    Term.(
      ret
        (const action
        $ uc_t
        $ opts_t ~default_n:7 ~default_t:1 ~default_duration:5.0 ~default_mute:(Some [ 6 ])))
  in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "CI gate: boot a deployment (default: n=7 t=1, replica 6 mute), drive it with a \
          closed-loop client, and fail on zero commits, agreement violations, or duplicate \
          application.")
    term

let () =
  let info =
    Cmd.info "dex_server" ~version:"1.0.0"
      ~doc:"Replicated key-value service over the DEX log — server and CI smoke."
  in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; smoke_cmd ]))
