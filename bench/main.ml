(* Benchmark harness.

   Two parts:
   1. Bechamel microbenchmarks — one Test.make per table/figure-level
      artifact plus the hot primitives underneath them (view statistics,
      predicate evaluation, the broadcast layers, full consensus instances,
      the replicated log).
   2. The experiment tables (E1–E7, see EXPERIMENTS.md) regenerated via
      Dex_experiments.Harness — the rows and series that correspond to the
      paper's Table 1 and its step-complexity claims.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- quick      # microbenches only
*)

open Bechamel
open Toolkit
open Dex_stdext
open Dex_vector
open Dex_condition
open Dex_net
open Dex_broadcast
open Dex_underlying
open Dex_workload

(* ----------------------- benchmark subjects ----------------------- *)

let bench_prng =
  Test.make ~name:"prng/bits64-x1000" (Staged.stage (fun () ->
      let g = Prng.create ~seed:1 in
      for _ = 1 to 1000 do
        ignore (Prng.bits64 g)
      done))

let bench_pqueue =
  Test.make ~name:"pqueue/push-pop-1k" (Staged.stage (fun () ->
      let q = Pqueue.create () in
      for i = 0 to 999 do
        Pqueue.push q ~time:(float_of_int (i * 7919 mod 1000)) ~seq:i i
      done;
      while not (Pqueue.is_empty q) do
        ignore (Pqueue.pop q)
      done))

let big_view =
  let rng = Prng.create ~seed:3 in
  View.init 100 (fun _ -> if Prng.bool rng then Some (Prng.int rng 5) else None)

let bench_view_margin =
  Test.make ~name:"view/freq_margin-n100"
    (Staged.stage (fun () -> ignore (View.freq_margin big_view)))

let pair7 = Pair.freq ~n:7 ~t:1

let view7 = Input_vector.to_view (Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 1 ])

(* Predicates read the view's incrementally-maintained statistics; the stats
   are computed once here (as they would be by View.set during a run) so the
   subjects measure the per-evaluation read path. *)
let stats7 = View.stats view7

let bench_p1 =
  Test.make ~name:"pair/P1-eval" (Staged.stage (fun () -> ignore (pair7.Pair.p1 stats7)))

let bench_p2 =
  Test.make ~name:"pair/P2-eval" (Staged.stage (fun () -> ignore (pair7.Pair.p2 stats7)))

let bench_f =
  Test.make ~name:"pair/F-eval" (Staged.stage (fun () -> ignore (pair7.Pair.f stats7)))

let bench_legality =
  Test.make ~name:"legality/P_prv-n6-t1" (Staged.stage (fun () ->
      ignore (Legality.is_legal ~universe:[ 0; 1 ] (Pair.privileged ~n:6 ~t:1 ~m:1))))

(* Full broadcast rounds in the simulator (n senders, all-to-all). *)
let idb_round n =
  let t = (n - 1) / 4 in
  let make p =
    let idb = Idb.create ~n ~t in
    {
      Protocol.start = (fun () -> Protocol.broadcast ~n (Idb.id_send p));
      on_message =
        (fun ~now:_ ~from m ->
          let emit = Idb.handle idb ~from m in
          List.concat_map (fun b -> Protocol.broadcast ~n b) emit.Idb.broadcasts);
    }
  in
  ignore (Runner.run (Runner.config ~n make))

let bracha_round n =
  let t = (n - 1) / 4 in
  let make p =
    let rb = Bracha.create ~n ~t in
    {
      Protocol.start = (fun () -> Protocol.broadcast ~n (Bracha.rb_send p));
      on_message =
        (fun ~now:_ ~from m ->
          let emit = Bracha.handle rb ~from m in
          List.concat_map (fun b -> Protocol.broadcast ~n b) emit.Bracha.broadcasts);
    }
  in
  ignore (Runner.run (Runner.config ~n make))

let bench_idb = Test.make ~name:"broadcast/idb-round-n9" (Staged.stage (fun () -> idb_round 9))

let bench_bracha =
  Test.make ~name:"broadcast/bracha-round-n9" (Staged.stage (fun () -> bracha_round 9))

(* Full consensus instances — one per Table-1 row (E1) and per step-shape
   point (E3/E6). *)
let consensus ?(uc = Scenario.Oracle) ~algo ~n ~t proposals =
  ignore (Scenario.run (Scenario.spec ~uc ~algo ~n ~t ~proposals ()))

let unanimous n = Input_gen.unanimous ~n 5

let margin m =
  let rng = Prng.create ~seed:(m * 17) in
  Input_gen.with_freq_margin ~rng ~n:7 ~margin:m

let bench_table1 =
  [
    Test.make ~name:"table1/brasileiro-n4" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Brasileiro ~n:4 ~t:1 (unanimous 4)));
    Test.make ~name:"table1/bosco-weak-n6" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Bosco ~n:6 ~t:1 (unanimous 6)));
    Test.make ~name:"table1/bosco-strong-n8" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Bosco ~n:8 ~t:1 (unanimous 8)));
    Test.make ~name:"table1/dex-freq-n7" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Dex_freq ~n:7 ~t:1 (unanimous 7)));
    Test.make ~name:"table1/dex-prv-n6" (Staged.stage (fun () ->
        consensus ~algo:(Scenario.Dex_prv 5) ~n:6 ~t:1 (unanimous 6)));
    Test.make ~name:"table1/plain-n4" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Plain ~n:4 ~t:1 (unanimous 4)));
  ]

let bench_steps =
  [
    Test.make ~name:"steps/dex-one-step-m7" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Dex_freq ~n:7 ~t:1 (margin 7)));
    Test.make ~name:"steps/dex-two-step-m3" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Dex_freq ~n:7 ~t:1 (margin 3)));
    Test.make ~name:"steps/dex-fallback-m1" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Dex_freq ~n:7 ~t:1 (margin 1)));
    Test.make ~name:"steps/bosco-fallback-m1" (Staged.stage (fun () ->
        consensus ~algo:Scenario.Bosco ~n:7 ~t:1 (margin 1)));
  ]

let bench_uc =
  [
    Test.make ~name:"uc/oracle-fallback" (Staged.stage (fun () ->
        consensus ~uc:Scenario.Oracle ~algo:Scenario.Plain ~n:7 ~t:1 (margin 1)));
    Test.make ~name:"uc/real-bracha-mmr" (Staged.stage (fun () ->
        consensus ~uc:Scenario.Real ~algo:Scenario.Plain ~n:7 ~t:1 (margin 1)));
    Test.make ~name:"uc/leader-based" (Staged.stage (fun () ->
        consensus ~uc:Scenario.Leader ~algo:Scenario.Plain ~n:7 ~t:1 (margin 1)));
  ]

module Doracle = Dex_core.Dex.Make (Uc_oracle)

let dex_msg_sample = Doracle.Idb (Idb.Echo { origin = 3; payload = 42 })

let bench_codec =
  [
    Test.make ~name:"codec/dex-msg-encode" (Staged.stage (fun () ->
        ignore (Dex_codec.Codec.encode Doracle.codec dex_msg_sample)));
    (let encoded = Dex_codec.Codec.encode Doracle.codec dex_msg_sample in
     Test.make ~name:"codec/dex-msg-decode" (Staged.stage (fun () ->
         ignore (Dex_codec.Codec.decode_exn Doracle.codec encoded))));
  ]

let bench_stubborn =
  Test.make ~name:"link/dex-over-30pct-loss" (Staged.stage (fun () ->
      let pair = Pair.freq ~n:7 ~t:1 in
      let cfg = Doracle.config ~pair () in
      let extra =
        List.map (fun (pid, i) -> (pid, Dex_link.Stubborn.wrap i)) (Doracle.extra cfg)
      in
      let make p = Dex_link.Stubborn.wrap (Doracle.instance cfg ~me:p ~proposal:5) in
      ignore
        (Runner.run
           (Runner.config
              ~discipline:(Discipline.lossy ~p:0.3 Discipline.asynchronous)
              ~seed:3 ~extra ~n:7 make))))

(* Registry hot path: the cost every pipeline stage pays per event. An
   increment is one atomic fetch-and-add; an observation is a bit-length
   bucket index plus two fetch-and-adds — both must stay cheap enough to
   leave on in production paths. *)
let bench_registry =
  let reg = Dex_metrics.Registry.create () in
  let c = Dex_metrics.Registry.counter reg "bench/ctr" in
  let tm = Dex_metrics.Registry.timer reg "bench/lat" in
  [
    Test.make ~name:"metrics/registry-incr"
      (Staged.stage (fun () -> Dex_metrics.Registry.incr c));
    Test.make ~name:"metrics/registry-observe"
      (Staged.stage (fun () -> Dex_metrics.Registry.observe_ns tm 12_345));
  ]

let bench_analysis =
  Test.make ~name:"analysis/p-one-step-n7" (Staged.stage (fun () ->
      ignore
        (Dex_analysis.Feasibility.p_dex_one_step ~n:7 ~t:1
           { Dex_analysis.Feasibility.bias = 0.8; alternatives = 2 })))

module Log = Dex_smr.Replicated_log.Make (Dex_core.Dex.Lane (Uc_oracle))

let bench_smr =
  Test.make ~name:"smr/log-5-slots-n7" (Staged.stage (fun () ->
      let pair = Pair.freq ~n:7 ~t:1 in
      let cfg = Log.config ~pair:(fun _ -> pair) ~slots:5 ~n:7 ~t:1 () in
      let make p =
        Log.replica cfg ~me:p
          ~propose:(fun ~slot -> 100 + slot)
          ~on_commit:(fun ~slot:_ ~provenance:_ _ -> ())
      in
      ignore (Runner.run (Runner.config ~extra:(Log.extra cfg) ~n:7 make))))

(* ----------------------- service throughput ----------------------- *)

(* Not a bechamel subject: one closed-loop run against a live loopback
   deployment (real sockets, real threads), reported as ops/s rather than
   ns/run. The numbers land in their own section of the JSON. *)
module Svc = Dex_service.Server.Make (Dex_core.Dex.Lane (Uc_oracle))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dex-bench-%s-%d" tag (Unix.getpid ()))
  in
  rm_rf dir;
  dir

let service_throughput ?(durable = false) ?(io_mode = Dex_runtime.Transport.Reactor) () =
  let n = 4 and t = 0 in
  let pair = Pair.freq ~n ~t in
  let dir = if durable then Some (fresh_dir "svc") else None in
  let cfg = Svc.config ?data_dir:dir ~io_mode ~pair:(fun _ -> pair) ~n ~t () in
  let d = Svc.launch cfg in
  let c = Dex_service.Client.connect ~io_mode ~client:1 (List.map snd d.Svc.ports) in
  let r =
    Dex_service.Client.Load.run_many ~clients:64 ~duration:2.0 c (fun i ->
        Dex_service.State_machine.Set (Printf.sprintf "k%d" (i mod 64), i))
  in
  Dex_service.Client.close c;
  Thread.delay 0.2;
  Svc.shutdown d;
  Option.iter rm_rf dir;
  let open Dex_service.Client.Load in
  let committed = float_of_int r.committed in
  let p50 = match r.latency with Some s -> s.Dex_metrics.Stats.p50 | None -> 0.0 in
  let p99 = match r.latency with Some s -> s.Dex_metrics.Stats.p99 | None -> 0.0 in
  let tag name =
    (* The reactor path is the default, so its rows keep the names earlier
       BENCH_*.json runs used; the threaded baseline gets its own prefix. *)
    let mode = match io_mode with
      | Dex_runtime.Transport.Reactor -> ""
      | Dex_runtime.Transport.Threads -> "threads-"
    in
    if durable then "service/durable-" ^ mode ^ name else "service/" ^ mode ^ name
  in
  [
    (tag "throughput-ops-s", r.throughput);
    ( tag "one-step-fraction",
      if r.committed = 0 then 0.0 else float_of_int r.one_step /. committed );
    (tag "latency-p50-ms", p50);
    (tag "latency-p99-ms", p99);
  ]

(* Large-value dissemination economics (E19): n=4 t=0 with the client
   submitting to three of the four replicas, so the fourth misses every
   batch and must pull its content — the workload the coded lane exists
   for. Per payload size, full vs coded: ops/s, p50, and the starved
   replica's fetch ingress per non-empty committed slot. In full mode every
   holder answers the fetch broadcast with the whole blob (n-1 = 3 copies);
   in coded mode the resolution ingresses ~one blob of fragments. *)
let large_value_rows () =
  let run mode bytes tag_size =
    let n = 4 and t = 0 in
    let pair = Pair.freq ~n ~t in
    let cfg = Svc.config ~dissemination:mode ~pair:(fun _ -> pair) ~n ~t () in
    let d = Svc.launch cfg in
    let ports = List.map snd d.Svc.ports in
    let starved_ports = List.filteri (fun i _ -> i < 3) ports in
    let payload = String.make bytes 'x' in
    let c = Dex_service.Client.connect ~client:1 starved_ports in
    let r =
      Dex_service.Client.Load.run_many ~clients:4 ~duration:2.0 c (fun i ->
          Dex_service.State_machine.Blob (Printf.sprintf "b%d" (i mod 16), payload))
    in
    Dex_service.Client.close c;
    Thread.delay 0.5;
    let starved = List.assoc 3 d.Svc.servers in
    let snap = Dex_metrics.Registry.snapshot (Svc.metrics starved) in
    let stats = Svc.stats starved in
    Svc.shutdown d;
    let ingress =
      Dex_metrics.Registry.get snap "service/fetch_bytes"
      + Dex_metrics.Registry.get snap "erasure/frag_bytes_in"
    in
    let batches = max 1 (stats.Svc.committed_slots - stats.Svc.empty_slots) in
    let open Dex_service.Client.Load in
    let p50 = match r.latency with Some s -> s.Dex_metrics.Stats.p50 | None -> 0.0 in
    let tag name =
      Printf.sprintf "service/large-value-%s-%s-%s" tag_size
        (Dex_erasure.Dissemination.to_string mode)
        name
    in
    [
      (tag "ops-s", r.throughput);
      (tag "latency-p50-ms", p50);
      ( tag "starved-fetch-KiB-per-commit",
        float_of_int ingress /. 1024.0 /. float_of_int batches );
    ]
  in
  List.concat_map
    (fun (bytes, tag_size) ->
      run Dex_erasure.Dissemination.Full bytes tag_size
      @ run Dex_erasure.Dissemination.Coded bytes tag_size)
    [ (1024, "1KiB"); (65536, "64KiB"); (524288, "512KiB") ]

(* Protocol-lane head-to-head (E20): the same loopback deployment run once
   per lane — dex, Kuo-Chen two-step, speculative hbft — same shape, same
   client population, so the rows compare the lanes and nothing else. The
   fast path differs per lane: dex expedites to one step, the other two to
   two, so the fraction row reads the matching provenance counter. *)
let proto_rows () =
  let run tag fast (module L : Dex_core.Protocol_lane.LANE) =
    let module S = Dex_service.Server.Make (L) in
    let n = 4 and t = 0 in
    let pair = Pair.freq ~n ~t in
    let cfg = S.config ~pair:(fun _ -> pair) ~n ~t () in
    let d = S.launch cfg in
    let c = Dex_service.Client.connect ~client:1 (List.map snd d.S.ports) in
    let r =
      Dex_service.Client.Load.run_many ~clients:64 ~duration:2.0 c (fun i ->
          Dex_service.State_machine.Set (Printf.sprintf "k%d" (i mod 64), i))
    in
    Dex_service.Client.close c;
    Thread.delay 0.2;
    S.shutdown d;
    let open Dex_service.Client.Load in
    let committed = float_of_int (max 1 r.committed) in
    let hits = match fast with `One -> r.one_step | `Two -> r.two_step in
    let p50 = match r.latency with Some s -> s.Dex_metrics.Stats.p50 | None -> 0.0 in
    let p99 = match r.latency with Some s -> s.Dex_metrics.Stats.p99 | None -> 0.0 in
    let row name = Printf.sprintf "service/proto-%s-%s" tag name in
    [
      (row "ops-s", r.throughput);
      (row "fast-path-fraction", float_of_int hits /. committed);
      (row "latency-p50-ms", p50);
      (row "latency-p99-ms", p99);
    ]
  in
  run "dex" `One (module Dex_core.Dex.Lane (Uc_oracle))
  @ run "two-step" `Two (module Dex_baselines.Kuo_chen.Lane (Uc_oracle))
  @ run "hbft" `Two (module Dex_baselines.Hbft.Lane (Uc_oracle))

(* Sharded service scaling: the same loopback box, the keyspace split over
   k = 1, 2, 4, 8 consensus groups behind one shared runtime and a shard
   router, 64 closed-loop clients per shard. On a multi-core host the groups
   commit in parallel and the aggregate should scale until the cores run
   out; on a single core the family measures the sharding overhead instead
   (see EXPERIMENTS.md E18). *)
module GSet = Dex_shard.Group_set.Make (Dex_core.Dex.Lane (Uc_oracle))

let shard_scaling_rows () =
  let run shards =
    let n = 4 and t = 0 in
    let pair = Pair.freq ~n ~t in
    let cfg = GSet.S.config ~pair:(fun _ -> pair) ~n ~t () in
    let map = Dex_shard.Shard_map.create ~shards () in
    let g = GSet.launch ~map cfg in
    let r =
      let router =
        Dex_shard.Router.connect ~map ~client:1 (Array.to_list (GSet.ports g))
      in
      let r =
        Dex_shard.Router.Load.run_many ~clients:(64 * shards) ~duration:2.0 router
          (fun i -> Dex_service.State_machine.Set (Printf.sprintf "k%d" (i mod 64), i))
      in
      Dex_shard.Router.close router;
      r
    in
    Thread.delay 0.2;
    GSet.shutdown g;
    let open Dex_service.Client.Load in
    let agg = r.Dex_shard.Router.Load.agg in
    let committed = float_of_int agg.committed in
    let p50 = match agg.latency with Some s -> s.Dex_metrics.Stats.p50 | None -> 0.0 in
    let p99 = match agg.latency with Some s -> s.Dex_metrics.Stats.p99 | None -> 0.0 in
    let tag name = Printf.sprintf "service/shards-%d-%s" shards name in
    [
      (tag "ops-s", agg.throughput);
      ( tag "one-step-fraction",
        if agg.committed = 0 then 0.0 else float_of_int agg.one_step /. committed );
      (tag "latency-p50-ms", p50);
      (tag "latency-p99-ms", p99);
    ]
  in
  List.concat_map run [ 1; 2; 4; 8 ]

(* Reactor dispatch latency: post a closure from another thread, wait for the
   loop to run it. Covers the self-pipe wake, one select round and the posted
   queue drain — the fixed overhead every timer or cross-thread send pays. *)
let reactor_tick_row () =
  (* [Stdlib.Condition]: the open of {!Dex_condition} shadows the stdlib
     module with the paper's input-vector conditions. *)
  let r = Dex_runtime.Reactor.create ~name:"bench" () in
  let mu = Mutex.create () and cv = Stdlib.Condition.create () in
  let fired = ref false in
  let samples =
    List.init 2000 (fun _ ->
        Mutex.lock mu;
        fired := false;
        Mutex.unlock mu;
        let t0 = Unix.gettimeofday () in
        Dex_runtime.Reactor.post r (fun () ->
            Mutex.lock mu;
            fired := true;
            Stdlib.Condition.signal cv;
            Mutex.unlock mu);
        Mutex.lock mu;
        while not !fired do
          Stdlib.Condition.wait cv mu
        done;
        Mutex.unlock mu;
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  Dex_runtime.Reactor.stop r;
  let s = Dex_metrics.Stats.summarize samples in
  [ ("reactor/tick-ns", s.Dex_metrics.Stats.p50) ]

(* ----------------------- durability lane ----------------------- *)

(* WAL time-to-durable per record, in microseconds. Without group commit
   every record pays its own fsync (append + sync inline); with group commit
   records are appended through the syncer and the latency runs until the
   covering watermark callback. Closed loop, 2000 records of ~128 bytes. *)
let wal_latency_rows () =
  let records = 2000 in
  let payload = String.make 128 'w' in
  let summarize samples =
    let s = Dex_metrics.Stats.summarize samples in
    (s.Dex_metrics.Stats.p50, s.Dex_metrics.Stats.p99)
  in
  (* Inline fsync per record. *)
  let dir = fresh_dir "wal-sync" in
  let o = Dex_store.Wal.open_ dir in
  let inline =
    List.init records (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Dex_store.Wal.append o.Dex_store.Wal.wal payload);
        ignore (Dex_store.Wal.sync o.Dex_store.Wal.wal);
        (Unix.gettimeofday () -. t0) *. 1e6)
  in
  Dex_store.Wal.close o.Dex_store.Wal.wal;
  rm_rf dir;
  let inline_p50, inline_p99 = summarize inline in
  (* Group commit: stamp each append, collect latency at the watermark. *)
  let dir = fresh_dir "wal-group" in
  let o = Dex_store.Wal.open_ dir in
  let mu = Mutex.create () in
  let stamps = Hashtbl.create records in
  let samples = ref [] in
  let covered = ref 0 in
  let on_durable w =
    let now = Unix.gettimeofday () in
    Mutex.lock mu;
    for lsn = !covered + 1 to w do
      match Hashtbl.find_opt stamps lsn with
      | Some t0 -> samples := (now -. t0) *. 1e6 :: !samples
      | None -> ()
    done;
    covered := max !covered w;
    Mutex.unlock mu
  in
  let syncer =
    Dex_store.Wal.syncer ~delay:0.001 ~cap:64 o.Dex_store.Wal.wal ~on_durable
  in
  for _ = 1 to records do
    let t0 = Unix.gettimeofday () in
    let lsn = Dex_store.Wal.syncer_append syncer payload in
    Mutex.lock mu;
    Hashtbl.replace stamps lsn t0;
    Mutex.unlock mu
  done;
  Dex_store.Wal.stop_syncer syncer;
  Dex_store.Wal.close o.Dex_store.Wal.wal;
  rm_rf dir;
  let group_p50, group_p99 = summarize !samples in
  [
    ("wal/append-fsync-p50-us", inline_p50);
    ("wal/append-fsync-p99-us", inline_p99);
    ("wal/group-commit-p50-us", group_p50);
    ("wal/group-commit-p99-us", group_p99);
  ]

(* Raw append (no fsync) tail latency with and without segment
   preallocation. Preallocated segments never extend the file on the hot
   path, so the p99 should be free of allocate-on-write stalls. Each append
   is flushed to the file before the stop watch reads: [append] alone only
   copies into the out_channel's 64 KiB buffer, so without the flush both
   lanes time memcpy and report the same p99 — the extend-on-write cost only
   shows up when the bytes actually reach the segment. *)
let wal_prealloc_rows () =
  let records = 4000 in
  let payload = String.make 128 'w' in
  let run ~preallocate tag =
    let dir = fresh_dir tag in
    let o = Dex_store.Wal.open_ ~preallocate dir in
    let samples =
      List.init records (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (Dex_store.Wal.append o.Dex_store.Wal.wal payload);
          Dex_store.Wal.flush o.Dex_store.Wal.wal;
          (Unix.gettimeofday () -. t0) *. 1e6)
    in
    Dex_store.Wal.close o.Dex_store.Wal.wal;
    rm_rf dir;
    (Dex_metrics.Stats.summarize samples).Dex_metrics.Stats.p99
  in
  [
    ("wal/preallocated-append-p99-us", run ~preallocate:true "wal-pre");
    ("wal/growing-append-p99-us", run ~preallocate:false "wal-grow");
  ]

let all_tests =
  Test.make_grouped ~name:"dex"
    ([
       bench_prng;
       bench_pqueue;
       bench_view_margin;
       bench_p1;
       bench_p2;
       bench_f;
       bench_legality;
       bench_idb;
       bench_bracha;
       bench_smr;
     ]
    @ bench_table1 @ bench_steps @ bench_uc @ bench_codec @ bench_registry
    @ [ bench_stubborn; bench_analysis ])

(* ----------------------- bechamel driver ----------------------- *)

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let collect_rows results =
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> rows := (name, est) :: !rows
          | _ -> ())
        tbl)
    results;
  List.sort compare !rows

let print_results rows =
  Printf.printf "%-36s %16s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 54 '-');
  List.iter (fun (name, est) -> Printf.printf "%-36s %16.1f\n" name est) rows

(* Machine-readable companion to the human tables: microbench subjects in
   ns/run plus the service-lane throughput and durability figures, stamped
   with the run date, so successive runs can be diffed by tooling. *)
let bench_date () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let write_json rows service_rows durability_rows =
  let date = bench_date () in
  let file = Printf.sprintf "BENCH_%s.json" date in
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"date\": %S,\n  \"unit\": \"ns/run\",\n  \"subjects\": {" date;
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "%s\n    %S: %.1f" (if i = 0 then "" else ",") name est)
    rows;
  Printf.fprintf oc "\n  },\n  \"service\": {";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "%s\n    %S: %.2f" (if i = 0 then "" else ",") name v)
    service_rows;
  Printf.fprintf oc "\n  },\n  \"durability\": {";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "%s\n    %S: %.2f" (if i = 0 then "" else ",") name v)
    durability_rows;
  Printf.fprintf oc "\n  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* Splice fresh [service/proto-*] rows into today's BENCH_<date>.json,
   keeping everything else, so `bench/main.exe -- proto` can re-measure the
   protocol-lane family without redoing the whole run. The scanner only
   understands the exact shape [write_json] emits — which is this file's
   only producer; a missing file yields a service-only JSON. *)
let reread_section body name =
  let tag = Printf.sprintf "%S: {" name in
  let n = String.length body and m = String.length tag in
  let rec find i =
    if i + m > n then None else if String.sub body i m = tag then Some (i + m) else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
    let stop =
      match String.index_from_opt body start '}' with Some j -> j | None -> n
    in
    String.sub body start (stop - start)
    |> String.split_on_char ','
    |> List.filter_map (fun e ->
           match Scanf.sscanf (String.trim e) "%S: %f" (fun k v -> (k, v)) with
           | kv -> Some kv
           | exception _ -> None)

let merge_proto_rows rows =
  let file = Printf.sprintf "BENCH_%s.json" (bench_date ()) in
  let subjects, service, durability =
    if Sys.file_exists file then begin
      let ic = open_in file in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      ( reread_section body "subjects",
        reread_section body "service",
        reread_section body "durability" )
    end
    else ([], [], [])
  in
  let service =
    List.filter
      (fun (k, _) -> not (String.starts_with ~prefix:"service/proto-" k))
      service
    @ rows
  in
  write_json subjects service durability

(* Run [f] in a forked child and marshal its result back. The service lanes
   are sensitive to runtime state the microbenchmarks leave behind — bechamel
   disables automatic compaction ([Gc.max_overhead] := 1e6) and its
   stabilization loop compacts the major heap down to nothing, after which
   the allocation-heavy loopback deployments measure the GC's re-expansion
   pacing instead of the I/O stack (2-3x slower than the same code in a
   fresh process). Forking gives every lane the process state it would have
   standalone. Must be called while the process is single-threaded. *)
let in_child (f : unit -> (string * float) list) : (string * float) list =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close rd;
    let result = try Ok (f ()) with e -> Error (Printexc.to_string e) in
    let oc = Unix.out_channel_of_descr wr in
    Marshal.to_channel oc result [];
    flush oc;
    (* [_exit]: skip at_exit so the parent's buffered output is not
       re-flushed from the child. *)
    Unix._exit 0
  | pid ->
    Unix.close wr;
    let ic = Unix.in_channel_of_descr rd in
    let result : ((string * float) list, string) Result.t = Marshal.from_channel ic in
    close_in ic;
    ignore (Unix.waitpid [] pid);
    (match result with Ok rows -> rows | Error e -> failwith e)

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  let quick = arg = "quick" in
  (* [service]: just the service+durable loopback runs, for quick A/B of
     runtime changes without the microbenchmark preamble or JSON output. *)
  if arg = "service" then begin
    let rows =
      service_throughput ()
      @ service_throughput ~io_mode:Dex_runtime.Transport.Threads ()
      @ service_throughput ~durable:true ()
    in
    List.iter (fun (name, v) -> Printf.printf "%-36s %16.2f\n" name v) rows;
    exit 0
  end;
  (* [shards]: just the sharded scaling family, for quick A/B of the
     shared-runtime / router stack. *)
  if arg = "shards" then begin
    let rows = shard_scaling_rows () in
    List.iter (fun (name, v) -> Printf.printf "%-36s %16.2f\n" name v) rows;
    exit 0
  end;
  (* [large]: just the large-value dissemination family (E19), for quick
     A/B of the full vs coded fetch economics. *)
  if arg = "large" then begin
    let rows = large_value_rows () in
    List.iter (fun (name, v) -> Printf.printf "%-48s %16.2f\n" name v) rows;
    exit 0
  end;
  (* [proto]: the protocol-lane head-to-head (E20), merged into today's
     BENCH_<date>.json in place. *)
  if arg = "proto" then begin
    let rows = proto_rows () in
    List.iter (fun (name, v) -> Printf.printf "%-48s %16.2f\n" name v) rows;
    merge_proto_rows rows;
    exit 0
  end;
  print_endline "== Bechamel microbenchmarks ==";
  let rows = in_child (fun () -> collect_rows (benchmark ())) in
  print_results rows;
  print_endline "\n== Service lane (loopback n=4 t=0, 64 closed-loop clients) ==";
  let service_rows =
    in_child (fun () ->
        service_throughput ()
        @ service_throughput ~io_mode:Dex_runtime.Transport.Threads ()
        @ reactor_tick_row ())
  in
  List.iter (fun (name, v) -> Printf.printf "%-36s %16.2f\n" name v) service_rows;
  print_endline "\n== Sharding lane (k groups, shared runtime, 64 clients/shard) ==";
  let shard_rows = in_child shard_scaling_rows in
  List.iter (fun (name, v) -> Printf.printf "%-36s %16.2f\n" name v) shard_rows;
  print_endline "\n== Large-value lane (starved replica, full vs coded dissemination) ==";
  let large_rows = in_child large_value_rows in
  List.iter (fun (name, v) -> Printf.printf "%-48s %16.2f\n" name v) large_rows;
  print_endline "\n== Protocol lanes (dex vs two-step vs hbft, loopback n=4 t=0) ==";
  let proto = in_child proto_rows in
  List.iter (fun (name, v) -> Printf.printf "%-48s %16.2f\n" name v) proto;
  let service_rows = service_rows @ shard_rows @ large_rows @ proto in
  print_endline "\n== Durability lane (WAL time-to-durable; durable service run) ==";
  let durability_rows =
    in_child (fun () ->
        wal_latency_rows () @ wal_prealloc_rows () @ service_throughput ~durable:true ())
  in
  List.iter (fun (name, v) -> Printf.printf "%-36s %16.2f\n" name v) durability_rows;
  write_json rows service_rows durability_rows;
  if not quick then begin
    print_endline "\n== Experiment tables (paper reproduction; see EXPERIMENTS.md) ==";
    Dex_experiments.Harness.trials := 20;
    List.iter (fun (_, f) -> f ()) Dex_experiments.Harness.all
  end
