(* End-to-end tests for algorithm DEX (Figure 1).

   Validates the paper's lemmas empirically:
   - Lemma 1 (Termination), Lemma 2 (Agreement), Lemma 3 (Unanimity) across
     schedules and Byzantine behaviours;
   - Lemma 4 (one-step decision for I ∈ C¹_k with ≤ k failures) and
     Lemma 5 (two-step decision for I ∈ C²_k) including the exact causal
     step counts: 1 for one-step, 2 for two-step, 4 for the underlying
     fallback with the two-step oracle. *)

open Dex_vector
open Dex_condition
open Dex_net
open Dex_underlying

module D = Dex_core.Dex.Make (Uc_oracle)
module Dmv = Dex_core.Dex.Make (Multivalued)

type fault =
  | Correct
  | Silent
  | Equivocate of (Pid.t -> Value.t)
  | Noisy

let run_dex ?(discipline = Discipline.lockstep) ?(seed = 1) ~pair ~proposals ~faults () =
  let cfg = D.config ~seed ~pair () in
  let n = cfg.D.n in
  let rng = Dex_stdext.Prng.create ~seed:(seed + 7919) in
  let make p =
    match faults p with
    | Correct -> D.instance cfg ~me:p ~proposal:(Input_vector.get proposals p)
    | Silent -> Adversary.silent ()
    | Equivocate split -> D.equivocator cfg ~me:p ~split
    | Noisy -> D.noisy cfg ~me:p ~rng ~values:[ 0; 1; 2 ]
  in
  Runner.run
    (Runner.config ~discipline ~seed ~extra:(D.extra cfg) ~classify:D.classify ~n make)

let no_faults _ = Correct

let correct_pids ~n faults = List.filter (fun p -> faults p = Correct) (Pid.all ~n)

let check_correct_consensus ~pair ~faults r =
  let n = pair.Pair.n in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d decided" p)
        true
        (r.Runner.decisions.(p) <> None))
    (correct_pids ~n faults);
  Alcotest.(check bool) "agreement among correct" true
    (Runner.agreement ~among:(correct_pids ~n faults) r);
  Alcotest.(check (list (pair int (pair int string)))) "no conflicting late decides" []
    (List.filter_map
       (fun (p, (d : Runner.decision)) ->
         match r.Runner.decisions.(p) with
         | Some first when first.Runner.value <> d.Runner.value ->
           Some (p, (d.Runner.value, d.Runner.tag))
         | _ -> None)
       r.Runner.late_decides)

let decision_exn r p =
  match r.Runner.decisions.(p) with Some d -> d | None -> Alcotest.failf "p%d undecided" p

let freq7 = Pair.freq ~n:7 ~t:1

(* --------------------- step-count reproduction --------------------- *)

let test_one_step_unanimous () =
  let r = run_dex ~pair:freq7 ~proposals:(Input_vector.make 7 5) ~faults:no_faults () in
  check_correct_consensus ~pair:freq7 ~faults:no_faults r;
  for p = 0 to 6 do
    let d = decision_exn r p in
    Alcotest.(check int) "value" 5 d.Runner.value;
    Alcotest.(check string) "tag" "one-step" d.Runner.tag;
    Alcotest.(check int) "one step" 1 d.Runner.depth
  done

let test_one_step_margin_above_4t () =
  (* margin 5 (6 vs 1) > 4t = 4: in C¹_0; f = 0 ⇒ one-step (Lemma 4, k=0). *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 5; 1 ] in
  Alcotest.(check (option int)) "level" (Some 0) (Pair.one_step_level freq7 proposals);
  let r = run_dex ~pair:freq7 ~proposals ~faults:no_faults () in
  check_correct_consensus ~pair:freq7 ~faults:no_faults r;
  for p = 0 to 6 do
    let d = decision_exn r p in
    Alcotest.(check string) "tag" "one-step" d.Runner.tag;
    Alcotest.(check int) "value" 5 d.Runner.value
  done

let test_two_step_margin_3 () =
  (* margin 3 (5 vs 2): not in C¹_0 (needs > 4) but in C²_0 (needs > 2).
     f = 0 ⇒ two-step decision at causal depth 2 (Lemma 5). *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 1 ] in
  Alcotest.(check (option int)) "not one-step" None (Pair.one_step_level freq7 proposals);
  Alcotest.(check (option int)) "two-step level" (Some 0) (Pair.two_step_level freq7 proposals);
  let r = run_dex ~pair:freq7 ~proposals ~faults:no_faults () in
  check_correct_consensus ~pair:freq7 ~faults:no_faults r;
  for p = 0 to 6 do
    let d = decision_exn r p in
    Alcotest.(check string) "tag" "two-step" d.Runner.tag;
    Alcotest.(check int) "two steps" 2 d.Runner.depth;
    Alcotest.(check int) "value" 5 d.Runner.value
  done

let test_fallback_four_steps () =
  (* margin 1 (4 vs 3): outside both condition sequences ⇒ every process
     falls through to the underlying consensus: 2 (IDB) + 2 (oracle) = 4
     causal steps — the paper's worst case in well-behaved runs. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 1 ] in
  Alcotest.(check (option int)) "outside S2" None (Pair.two_step_level freq7 proposals);
  let r = run_dex ~pair:freq7 ~proposals ~faults:no_faults () in
  check_correct_consensus ~pair:freq7 ~faults:no_faults r;
  for p = 0 to 6 do
    let d = decision_exn r p in
    Alcotest.(check string) "tag" "underlying" d.Runner.tag;
    Alcotest.(check int) "four steps" 4 d.Runner.depth
  done

(* --------------------- adaptiveness (Lemma 4/5) --------------------- *)

let test_adaptive_one_step_with_failures () =
  (* n = 13, t = 2 (n > 6t). Unanimous input has margin 13 > 4t + 2k for
     k = 2, i.e. it sits in C¹_2: one-step decision must survive f = 2
     silent failures. *)
  let pair = Pair.freq ~n:13 ~t:2 in
  let proposals = Input_vector.make 13 9 in
  Alcotest.(check (option int)) "level 2" (Some 2) (Pair.one_step_level pair proposals);
  let faults p = if p = 11 || p = 12 then Silent else Correct in
  let r = run_dex ~pair ~proposals ~faults () in
  check_correct_consensus ~pair ~faults r;
  List.iter
    (fun p ->
      let d = decision_exn r p in
      Alcotest.(check string) "tag" "one-step" d.Runner.tag;
      Alcotest.(check int) "one step" 1 d.Runner.depth)
    (correct_pids ~n:13 faults)

let test_adaptive_boundary () =
  (* Input at one-step level exactly k = 1 (margin 11 on n = 13, t = 2:
     11 > 8 + 2·1 = 10 but not > 12). With f = 1 the one-step guarantee
     holds; with f = 2 only the two-step one does (margin 11 > 4 + 2·2 = 8,
     level-2 of S²). *)
  let pair = Pair.freq ~n:13 ~t:2 in
  let proposals = Input_vector.of_list [ 9; 9; 9; 9; 9; 9; 9; 9; 9; 9; 9; 9; 1 ] in
  Alcotest.(check (option int)) "S1 level 1" (Some 1) (Pair.one_step_level pair proposals);
  Alcotest.(check (option int)) "S2 level 2" (Some 2) (Pair.two_step_level pair proposals);
  (* f = 1: all correct decide in one step. *)
  let faults1 p = if p = 5 then Silent else Correct in
  let r1 = run_dex ~pair ~proposals ~faults:faults1 () in
  check_correct_consensus ~pair ~faults:faults1 r1;
  List.iter
    (fun p -> Alcotest.(check string) "f=1 one-step" "one-step" (decision_exn r1 p).Runner.tag)
    (correct_pids ~n:13 faults1);
  (* f = 2: the guarantee degrades to two-step — and must not be worse. *)
  let faults2 p = if p = 5 || p = 6 then Silent else Correct in
  let r2 = run_dex ~pair ~proposals ~faults:faults2 () in
  check_correct_consensus ~pair ~faults:faults2 r2;
  List.iter
    (fun p ->
      let d = decision_exn r2 p in
      Alcotest.(check bool) "f=2 fast decision" true
        (d.Runner.tag = "one-step" || d.Runner.tag = "two-step");
      Alcotest.(check bool) "within two steps" true (d.Runner.depth <= 2))
    (correct_pids ~n:13 faults2)

(* --------------------- privileged-value pair --------------------- *)

let prv6 m = Pair.privileged ~n:6 ~t:1 ~m

let test_prv_one_step () =
  (* #m = 5 > 3t + k for k = 1: one-step survives one failure. *)
  let m = 7 in
  let pair = prv6 m in
  let proposals = Input_vector.of_list [ 7; 7; 7; 7; 7; 0 ] in
  Alcotest.(check (option int)) "level" (Some 1) (Pair.one_step_level pair proposals);
  let faults p = if p = 5 then Silent else Correct in
  let r = run_dex ~pair ~proposals ~faults () in
  check_correct_consensus ~pair ~faults r;
  List.iter
    (fun p ->
      let d = decision_exn r p in
      Alcotest.(check int) "privileged value" m d.Runner.value;
      Alcotest.(check string) "tag" "one-step" d.Runner.tag)
    (correct_pids ~n:6 faults)

let test_prv_two_step () =
  (* #m = 3 > 2t = 2 but not > 3t = 3: two-step decision. *)
  let m = 7 in
  let pair = prv6 m in
  let proposals = Input_vector.of_list [ 7; 7; 7; 1; 2; 3 ] in
  Alcotest.(check (option int)) "no one-step" None (Pair.one_step_level pair proposals);
  Alcotest.(check (option int)) "two-step level 0" (Some 0) (Pair.two_step_level pair proposals);
  let r = run_dex ~pair ~proposals ~faults:no_faults () in
  check_correct_consensus ~pair ~faults:no_faults r;
  for p = 0 to 5 do
    let d = decision_exn r p in
    Alcotest.(check int) "decides m" m d.Runner.value;
    Alcotest.(check string) "tag" "two-step" d.Runner.tag
  done

let test_prv_fallback_without_m () =
  (* The privileged value is scarce: fall back to the underlying consensus.
     Termination and agreement must still hold. *)
  let pair = prv6 7 in
  let proposals = Input_vector.of_list [ 1; 1; 2; 2; 3; 3 ] in
  let r = run_dex ~pair ~proposals ~faults:no_faults () in
  check_correct_consensus ~pair ~faults:no_faults r;
  for p = 0 to 5 do
    Alcotest.(check string) "tag" "underlying" (decision_exn r p).Runner.tag
  done

(* --------------------- safety under Byzantine faults --------------------- *)

let test_unanimity_with_equivocator () =
  (* Lemma 3: all correct propose 5; the Byzantine p6 equivocates wildly.
     No correct process may decide anything but 5. Exercised across 30
     random schedules. *)
  let proposals = Input_vector.make 7 5 in
  let faults p = if p = 6 then Equivocate (fun dst -> if dst mod 2 = 0 then 1 else 2) else Correct in
  for seed = 1 to 30 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair:freq7 ~proposals ~faults () in
    check_correct_consensus ~pair:freq7 ~faults r;
    List.iter
      (fun p -> Alcotest.(check int) "unanimity" 5 (decision_exn r p).Runner.value)
      (correct_pids ~n:7 faults)
  done

let test_agreement_mixed_input_equivocator () =
  (* Hard case: input straddles the one-step threshold and the Byzantine
     process pushes each side differently. Agreement must hold on every
     schedule. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 0 (* p6 byz *) ] in
  let faults p = if p = 6 then Equivocate (fun dst -> if dst < 3 then 5 else 1) else Correct in
  for seed = 1 to 50 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair:freq7 ~proposals ~faults () in
    check_correct_consensus ~pair:freq7 ~faults r
  done

let test_agreement_noisy_byzantine () =
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 0 ] in
  let faults p = if p = 6 then Noisy else Correct in
  for seed = 1 to 30 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair:freq7 ~proposals ~faults () in
    check_correct_consensus ~pair:freq7 ~faults r
  done

let test_agreement_silent_plus_skewed_network () =
  (* One crash plus a network that starves two processes: late processes
     must still decide (via whatever path) and agree. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 0 ] in
  let faults p = if p = 6 then Silent else Correct in
  let discipline =
    Discipline.delay_into ~dst:[ 0; 1 ] ~extra:50.0 Discipline.asynchronous
  in
  for seed = 1 to 20 do
    let r = run_dex ~discipline ~seed ~pair:freq7 ~proposals ~faults () in
    check_correct_consensus ~pair:freq7 ~faults r
  done

let test_one_step_and_two_step_coexist () =
  (* Equivocator sends 5 to some processes: those can reach P1 while others
     decide via P2 or UC; Case 2/4 of Lemma 2's proof. Decisions agree. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 5; 0 ] in
  let faults p = if p = 6 then Equivocate (fun dst -> if dst <= 2 then 5 else 1) else Correct in
  for seed = 1 to 50 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair:freq7 ~proposals ~faults () in
    check_correct_consensus ~pair:freq7 ~faults r;
    List.iter
      (fun p -> Alcotest.(check int) "value 5" 5 (decision_exn r p).Runner.value)
      (correct_pids ~n:7 faults)
  done

(* --------------------- full stack without the oracle --------------------- *)

let run_dex_mv ?(discipline = Discipline.asynchronous) ?(seed = 1) ~pair ~proposals ~faults () =
  let cfg = Dmv.config ~seed ~pair () in
  let make p =
    match faults p with
    | Correct -> Dmv.instance cfg ~me:p ~proposal:(Input_vector.get proposals p)
    | Silent -> Adversary.silent ()
    | Equivocate split -> Dmv.equivocator cfg ~me:p ~split
    | Noisy -> Adversary.silent ()
  in
  Runner.run (Runner.config ~discipline ~seed ~extra:(Dmv.extra cfg) ~n:cfg.Dmv.n make)

let test_mv_stack_fast_path () =
  let proposals = Input_vector.make 7 5 in
  let r = run_dex_mv ~discipline:Discipline.lockstep ~pair:freq7 ~proposals ~faults:no_faults () in
  check_correct_consensus ~pair:freq7 ~faults:no_faults r;
  for p = 0 to 6 do
    let d = decision_exn r p in
    Alcotest.(check string) "tag" "one-step" d.Runner.tag;
    Alcotest.(check int) "depth 1" 1 d.Runner.depth
  done

let test_mv_stack_pessimistic () =
  (* Pessimistic input, real UC stack (Bracha + MMR): termination and
     agreement with zero oracles in the system. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 1 ] in
  for seed = 1 to 15 do
    let r = run_dex_mv ~seed ~pair:freq7 ~proposals ~faults:no_faults () in
    check_correct_consensus ~pair:freq7 ~faults:no_faults r
  done

let test_mv_stack_with_silent_fault () =
  let proposals = Input_vector.of_list [ 5; 5; 5; 1; 1; 2; 0 ] in
  let faults p = if p = 6 then Silent else Correct in
  for seed = 1 to 15 do
    let r = run_dex_mv ~seed ~pair:freq7 ~proposals ~faults () in
    check_correct_consensus ~pair:freq7 ~faults r
  done

(* --------------------- DEX over the leader-based UC --------------------- *)

let test_leader_stack_fast_path () =
  (* With the eventually-synchronous UC underneath, the fast paths are
     untouched: a unanimous input still one-steps before any timer fires. *)
  let proposals = Input_vector.make 7 5 in
  let out =
    Dex_workload.Scenario.run
      (Dex_workload.Scenario.spec ~uc:Dex_workload.Scenario.Leader
         ~algo:Dex_workload.Scenario.Dex_freq ~n:7 ~t:1 ~proposals ())
  in
  Alcotest.(check bool) "all decided" true out.Dex_workload.Scenario.all_decided;
  Alcotest.(check (list (pair string int))) "one-step everywhere" [ ("one-step", 7) ]
    out.Dex_workload.Scenario.tags

let test_leader_stack_pessimistic () =
  (* Pessimistic input: the decision comes out of the leader rounds. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 1 ] in
  for seed = 1 to 10 do
    let out =
      Dex_workload.Scenario.run
        (Dex_workload.Scenario.spec ~seed ~discipline:Discipline.asynchronous
           ~uc:Dex_workload.Scenario.Leader ~algo:Dex_workload.Scenario.Dex_freq ~n:7 ~t:1
           ~proposals ())
    in
    Alcotest.(check bool) "all decided" true out.Dex_workload.Scenario.all_decided;
    Alcotest.(check bool) "agreement" true out.Dex_workload.Scenario.agreement
  done

let test_leader_stack_with_fault () =
  let proposals = Input_vector.of_list [ 5; 5; 5; 1; 1; 2; 0 ] in
  for seed = 1 to 10 do
    let out =
      Dex_workload.Scenario.run
        (Dex_workload.Scenario.spec ~seed ~discipline:Discipline.asynchronous
           ~uc:Dex_workload.Scenario.Leader ~algo:Dex_workload.Scenario.Dex_freq ~n:7 ~t:1
           ~proposals
           ~faults:(Dex_workload.Fault_spec.silent_set [ 6 ])
           ())
    in
    Alcotest.(check bool) "all decided" true out.Dex_workload.Scenario.all_decided;
    Alcotest.(check bool) "agreement" true out.Dex_workload.Scenario.agreement
  done

(* --------------------- snapshot-mode ablation --------------------- *)

let run_dex_mode ~mode ?(discipline = Discipline.lockstep) ?(seed = 1) ~pair ~proposals ()
    =
  let cfg = D.config ~seed ~pair () in
  let make p = D.instance ~mode cfg ~me:p ~proposal:(Input_vector.get proposals p) in
  Runner.run (Runner.config ~discipline ~seed ~extra:(D.extra cfg) ~n:cfg.D.n make)

let test_snapshot_same_on_unanimous () =
  let proposals = Input_vector.make 7 5 in
  let r = run_dex_mode ~mode:`Snapshot ~pair:freq7 ~proposals () in
  for p = 0 to 6 do
    let d = decision_exn r p in
    Alcotest.(check string) "still one-step" "one-step" d.Runner.tag;
    Alcotest.(check int) "value" 5 d.Runner.value
  done

let test_snapshot_safe_and_agreeing () =
  (* The ablation changes coverage, never safety. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 1 ] in
  for seed = 1 to 30 do
    let r =
      run_dex_mode ~mode:`Snapshot ~discipline:Discipline.asynchronous ~seed ~pair:freq7
        ~proposals ()
    in
    Alcotest.(check bool) "all decided" true (Runner.all_decided r);
    Alcotest.(check bool) "agreement" true (Runner.agreement r)
  done

let test_snapshot_weaker_than_reevaluate () =
  (* margin-5 input: re-evaluation always one-steps; the snapshot variant
     must miss it on at least some schedules. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 5; 1 ] in
  let count_one_steps mode =
    List.length
      (List.concat_map
         (fun seed ->
           let r =
             run_dex_mode ~mode ~discipline:Discipline.asynchronous ~seed ~pair:freq7
               ~proposals ()
           in
           List.filter
             (fun d -> match d with Some d -> d.Runner.tag = "one-step" | None -> false)
             (Array.to_list r.Runner.decisions))
         (List.init 20 (fun i -> i + 1)))
  in
  let full = count_one_steps `Reevaluate in
  let snap = count_one_steps `Snapshot in
  Alcotest.(check int) "re-evaluation always one-steps" (20 * 7) full;
  Alcotest.(check bool)
    (Printf.sprintf "snapshot strictly weaker (%d < %d)" snap full)
    true (snap < full)

(* Byzantine behaviours under both evaluation modes: the snapshot ablation
   must not open a safety hole that only re-evaluation closes. *)

let run_dex_mode_faults ~mode ?(discipline = Discipline.asynchronous) ?(seed = 1) ~pair
    ~proposals ~faults () =
  let cfg = D.config ~seed ~pair () in
  let rng = Dex_stdext.Prng.create ~seed:(seed + 7919) in
  let make p =
    match faults p with
    | Correct -> D.instance ~mode cfg ~me:p ~proposal:(Input_vector.get proposals p)
    | Silent -> Adversary.silent ()
    | Equivocate split -> D.equivocator cfg ~me:p ~split
    | Noisy -> D.noisy cfg ~me:p ~rng ~values:[ 0; 1; 2 ]
  in
  Runner.run (Runner.config ~discipline ~seed ~extra:(D.extra cfg) ~n:cfg.D.n make)

let both_modes = [ (`Reevaluate, "reevaluate"); (`Snapshot, "snapshot") ]

let adversaries =
  [
    ("equivocator", Equivocate (fun dst -> if dst mod 2 = 0 then 1 else 2));
    ("noisy", Noisy);
  ]

let test_modes_byzantine_unanimity () =
  (* All correct processes propose 5 (Lemma 3 setting): under either mode
     and either adversary, every correct process decides 5. *)
  let proposals = Input_vector.make 7 5 in
  List.iter
    (fun (mode, mode_name) ->
      List.iter
        (fun (adv_name, adv) ->
          let faults p = if p = 6 then adv else Correct in
          for seed = 1 to 15 do
            let r = run_dex_mode_faults ~mode ~seed ~pair:freq7 ~proposals ~faults () in
            check_correct_consensus ~pair:freq7 ~faults r;
            List.iter
              (fun p ->
                Alcotest.(check int)
                  (Printf.sprintf "%s/%s seed %d validity" mode_name adv_name seed)
                  5
                  (decision_exn r p).Runner.value)
              (correct_pids ~n:7 faults)
          done)
        adversaries)
    both_modes

let test_modes_byzantine_agreement () =
  (* Contended input straddling the decision thresholds: agreement and
     termination for every (mode, adversary) combination. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 0 ] in
  List.iter
    (fun (mode, _) ->
      List.iter
        (fun (_, adv) ->
          let faults p = if p = 6 then adv else Correct in
          for seed = 1 to 15 do
            let r = run_dex_mode_faults ~mode ~seed ~pair:freq7 ~proposals ~faults () in
            check_correct_consensus ~pair:freq7 ~faults r
          done)
        adversaries)
    both_modes

(* --------------------- edge cases --------------------- *)

let test_t_zero () =
  (* t = 0: no fault tolerance needed; P1 margin > 0 fires as soon as all
     three proposals (n - t = n) are in and agree. *)
  let pair = Pair.freq ~n:3 ~t:0 in
  let r = run_dex ~pair ~proposals:(Input_vector.make 3 8) ~faults:no_faults () in
  check_correct_consensus ~pair ~faults:no_faults r;
  for p = 0 to 2 do
    Alcotest.(check string) "one-step" "one-step" (decision_exn r p).Runner.tag
  done

let test_t_zero_contended () =
  (* Margin 1 (2 vs 1) > 4t = 0: still a one-step input at t = 0. *)
  let pair = Pair.freq ~n:3 ~t:0 in
  let r = run_dex ~pair ~proposals:(Input_vector.of_list [ 8; 8; 1 ]) ~faults:no_faults () in
  check_correct_consensus ~pair ~faults:no_faults r;
  Alcotest.(check (list int)) "majority" [ 8 ] (Runner.decided_values r)

let test_crash_mid_broadcast () =
  (* A process crashing halfway through its first broadcast: some peers see
     its proposal, some do not. Safety and termination must hold. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 1 ] in
  for seed = 1 to 20 do
    let cfg = D.config ~seed ~pair:freq7 () in
    let make p =
      if p = 6 then
        Adversary.crash_after_actions 3 (D.instance cfg ~me:6 ~proposal:1)
      else D.instance cfg ~me:p ~proposal:(Input_vector.get proposals p)
    in
    let r =
      Runner.run
        (Runner.config ~discipline:Discipline.asynchronous ~seed ~extra:(D.extra cfg) ~n:7
           make)
    in
    let correct = [ 0; 1; 2; 3; 4; 5 ] in
    List.iter
      (fun p -> Alcotest.(check bool) "decided" true (r.Runner.decisions.(p) <> None))
      correct;
    Alcotest.(check bool) "agreement" true (Runner.agreement ~among:correct r)
  done

let test_large_scale_two_byzantine () =
  (* n = 13, t = 2: one equivocator plus one noisy process, margin input.
     30 async schedules. *)
  let pair = Pair.freq ~n:13 ~t:2 in
  let proposals = Input_vector.init 13 (fun i -> if i < 10 then 5 else 1) in
  let faults p =
    if p = 11 then Equivocate (fun dst -> dst mod 3)
    else if p = 12 then Noisy
    else Correct
  in
  for seed = 1 to 15 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair ~proposals ~faults () in
    check_correct_consensus ~pair ~faults r
  done

let test_very_large_instance () =
  (* n = 31, t = 5 (n > 6t): sanity at a size an order beyond the paper's
     running examples. Unanimous input, one-step everywhere. *)
  let pair = Pair.freq ~n:31 ~t:5 in
  let r = run_dex ~pair ~proposals:(Input_vector.make 31 4) ~faults:no_faults () in
  check_correct_consensus ~pair ~faults:no_faults r;
  for p = 0 to 30 do
    Alcotest.(check string) "one-step" "one-step" (decision_exn r p).Runner.tag
  done

(* --------------------- privileged pair, larger scale --------------------- *)

let test_prv_large_with_equivocator () =
  (* n = 11, t = 2 privileged pair: 9 correct propose m, one silent, one
     equivocating. #m among correct = 9 > 3t + k for k = 2: the one-step
     guarantee survives both faults. *)
  let m = 4 in
  let pair = Pair.privileged ~n:11 ~t:2 ~m in
  let proposals = Input_vector.init 11 (fun _ -> m) in
  let faults p =
    if p = 9 then Silent
    else if p = 10 then Equivocate (fun dst -> if dst mod 2 = 0 then 0 else 1)
    else Correct
  in
  for seed = 1 to 15 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair ~proposals ~faults () in
    check_correct_consensus ~pair ~faults r;
    List.iter
      (fun p ->
        let d = decision_exn r p in
        Alcotest.(check int) "privileged value" m d.Runner.value;
        Alcotest.(check string) "one-step" "one-step" d.Runner.tag)
      (correct_pids ~n:11 faults)
  done

let test_prv_equivocator_pushes_m () =
  (* Adversary pushes the privileged value to half the processes while the
     correct are split — m's privilege must not let the Byzantine process
     fabricate a fast m decision that conflicts with the UC outcome. *)
  let m = 4 in
  let pair = Pair.privileged ~n:6 ~t:1 ~m in
  let proposals = Input_vector.of_list [ 4; 4; 1; 1; 2; 0 ] in
  let faults p = if p = 5 then Equivocate (fun dst -> if dst < 3 then m else 1) else Correct in
  for seed = 1 to 40 do
    let r = run_dex ~discipline:Discipline.asynchronous ~seed ~pair ~proposals ~faults () in
    check_correct_consensus ~pair ~faults r
  done

(* --------------------- timer depth semantics --------------------- *)

type timer_msg = Kick | Note of int

let test_timer_preserves_depth () =
  (* A protocol that forwards a message through a timer: the post-timer
     send must carry the same causal depth as an immediate send would. *)
  let make p =
    if p = 0 then
      {
        Protocol.start = (fun () -> [ Protocol.send 1 (Note 1) ]);
        on_message = (fun ~now:_ ~from:_ _ -> []);
      }
    else if p = 1 then
      {
        Protocol.start = (fun () -> []);
        on_message =
          (fun ~now:_ ~from:_ msg ->
            match msg with
            | Note _ -> [ Protocol.Set_timer { delay = 3.0; msg = Kick } ]
            | Kick -> [ Protocol.send 2 (Note 2) ]);
      }
    else
      {
        Protocol.start = (fun () -> []);
        on_message =
          (fun ~now:_ ~from:_ msg ->
            match msg with
            | Note d -> [ Protocol.decide ~tag:"depth-probe" d ]
            | Kick -> []);
      }
  in
  let r = Runner.run (Runner.config ~discipline:Discipline.lockstep ~n:3 make) in
  match r.Runner.decisions.(2) with
  | Some d ->
    (* p0 -> p1 is depth 1; the timer pause adds no depth; p1 -> p2 is
       depth 2; decision consumes depth 2. Time shows the 3-unit pause. *)
    Alcotest.(check int) "depth 2" 2 d.Runner.depth;
    Alcotest.(check bool) "time includes pause" true (d.Runner.time >= 4.0)
  | None -> Alcotest.fail "undecided"

(* --------------------- replay determinism --------------------- *)

let test_replay_identical_trace () =
  (* The reproducibility contract: the same seed yields a byte-identical
     event trace, decisions included — what makes every experiment in
     EXPERIMENTS.md replayable. *)
  let run () =
    let cfg = D.config ~seed:17 ~pair:freq7 () in
    Runner.run
      (Runner.config ~discipline:Discipline.asynchronous ~seed:17 ~extra:(D.extra cfg)
         ~trace:true ~pp_msg:D.pp_msg ~n:7 (fun p ->
           D.instance cfg ~me:p ~proposal:(p mod 2)))
  in
  let r1 = run () and r2 = run () in
  let labels r =
    List.map
      (fun e -> (e.Dex_sim.Trace.time, e.Dex_sim.Trace.label))
      (Dex_sim.Trace.to_list r.Runner.trace)
  in
  Alcotest.(check int) "same event count" (List.length (labels r1)) (List.length (labels r2));
  Alcotest.(check bool) "identical traces" true (labels r1 = labels r2);
  Alcotest.(check bool) "identical decisions" true (r1.Runner.decisions = r2.Runner.decisions)

(* --------------------- plumbing --------------------- *)

let test_message_classes () =
  let r = run_dex ~pair:freq7 ~proposals:(Input_vector.make 7 5) ~faults:no_faults () in
  let classes = List.map fst r.Runner.sent_by_class in
  Alcotest.(check bool) "P lane" true (List.mem "P" classes);
  Alcotest.(check bool) "IDB lane" true (List.mem "IDB" classes);
  Alcotest.(check bool) "UC lane" true (List.mem "UC" classes)

let test_config_mismatch_rejected () =
  let cfg = D.config ~pair:freq7 () in
  let bad = { cfg with D.n = 9 } in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Dex.instance: pair dimensions disagree with config") (fun () ->
      ignore (D.instance bad ~me:0 ~proposal:1))

(* --------------------- property test --------------------- *)

let prop_agreement_random =
  (* Random proposals, random fault pattern (≤ t silent/equivocating),
     random schedule: correct processes always terminate and agree. *)
  QCheck.Test.make ~name:"DEX agreement+termination on random runs" ~count:150
    QCheck.(triple (int_bound 1_000_000) (array_of_size (QCheck.Gen.return 7) (int_bound 2)) (int_bound 13))
    (fun (seed, props, fault_choice) ->
      QCheck.assume (Array.length props = 7);
      let proposals = Input_vector.of_array props in
      let faults p =
        if p = 6 then
          match fault_choice mod 4 with
          | 0 -> Correct
          | 1 -> Silent
          | 2 -> Equivocate (fun dst -> dst mod 3)
          | _ -> Noisy
        else Correct
      in
      let r =
        run_dex ~discipline:Discipline.asynchronous ~seed ~pair:freq7 ~proposals ~faults ()
      in
      let correct = correct_pids ~n:7 faults in
      List.for_all (fun p -> r.Runner.decisions.(p) <> None) correct
      && Runner.agreement ~among:correct r)

let prop_unanimity_random_schedule =
  QCheck.Test.make ~name:"DEX unanimity on random schedules" ~count:150
    QCheck.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (seed, fault_choice) ->
      let proposals = Input_vector.make 7 4 in
      let faults p =
        if p = 6 then
          match fault_choice with
          | 0 -> Correct
          | 1 -> Silent
          | 2 -> Equivocate (fun dst -> if dst mod 2 = 0 then 0 else 1)
          | _ -> Noisy
        else Correct
      in
      let r =
        run_dex ~discipline:Discipline.asynchronous ~seed ~pair:freq7 ~proposals ~faults ()
      in
      List.for_all
        (fun p ->
          match r.Runner.decisions.(p) with Some d -> d.Runner.value = 4 | None -> false)
        (correct_pids ~n:7 faults))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_agreement_random; prop_unanimity_random_schedule ]

let () =
  Alcotest.run "dex_core"
    [
      ( "steps",
        [
          Alcotest.test_case "one-step unanimous" `Quick test_one_step_unanimous;
          Alcotest.test_case "one-step margin > 4t" `Quick test_one_step_margin_above_4t;
          Alcotest.test_case "two-step margin 3" `Quick test_two_step_margin_3;
          Alcotest.test_case "fallback four steps" `Quick test_fallback_four_steps;
        ] );
      ( "adaptiveness",
        [
          Alcotest.test_case "one-step with f=t failures" `Quick
            test_adaptive_one_step_with_failures;
          Alcotest.test_case "boundary degradation" `Quick test_adaptive_boundary;
        ] );
      ( "privileged",
        [
          Alcotest.test_case "one-step" `Quick test_prv_one_step;
          Alcotest.test_case "two-step" `Quick test_prv_two_step;
          Alcotest.test_case "fallback" `Quick test_prv_fallback_without_m;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "unanimity vs equivocator" `Quick test_unanimity_with_equivocator;
          Alcotest.test_case "agreement vs equivocator" `Quick
            test_agreement_mixed_input_equivocator;
          Alcotest.test_case "agreement vs noise" `Quick test_agreement_noisy_byzantine;
          Alcotest.test_case "crash + skewed network" `Quick
            test_agreement_silent_plus_skewed_network;
          Alcotest.test_case "one/two-step coexistence" `Quick test_one_step_and_two_step_coexist;
        ] );
      ( "real-uc-stack",
        [
          Alcotest.test_case "fast path" `Quick test_mv_stack_fast_path;
          Alcotest.test_case "pessimistic input" `Quick test_mv_stack_pessimistic;
          Alcotest.test_case "with silent fault" `Quick test_mv_stack_with_silent_fault;
        ] );
      ( "leader-uc-stack",
        [
          Alcotest.test_case "fast path untouched" `Quick test_leader_stack_fast_path;
          Alcotest.test_case "pessimistic input" `Quick test_leader_stack_pessimistic;
          Alcotest.test_case "with silent fault" `Quick test_leader_stack_with_fault;
        ] );
      ( "snapshot-ablation",
        [
          Alcotest.test_case "same on unanimous" `Quick test_snapshot_same_on_unanimous;
          Alcotest.test_case "safe and agreeing" `Quick test_snapshot_safe_and_agreeing;
          Alcotest.test_case "strictly weaker coverage" `Quick
            test_snapshot_weaker_than_reevaluate;
          Alcotest.test_case "byzantine validity, both modes" `Quick
            test_modes_byzantine_unanimity;
          Alcotest.test_case "byzantine agreement, both modes" `Quick
            test_modes_byzantine_agreement;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "t = 0 unanimous" `Quick test_t_zero;
          Alcotest.test_case "t = 0 contended" `Quick test_t_zero_contended;
          Alcotest.test_case "crash mid-broadcast" `Quick test_crash_mid_broadcast;
          Alcotest.test_case "n=13 two byzantine" `Quick test_large_scale_two_byzantine;
          Alcotest.test_case "n=31 t=5" `Quick test_very_large_instance;
        ] );
      ( "privileged-extended",
        [
          Alcotest.test_case "n=11 t=2 with two byzantine" `Quick test_prv_large_with_equivocator;
          Alcotest.test_case "equivocator pushes m" `Quick test_prv_equivocator_pushes_m;
        ] );
      ( "timers",
        [ Alcotest.test_case "timer preserves causal depth" `Quick test_timer_preserves_depth ] );
      ( "replay",
        [ Alcotest.test_case "identical trace from same seed" `Quick test_replay_identical_trace ] );
      ( "plumbing",
        [
          Alcotest.test_case "message classes" `Quick test_message_classes;
          Alcotest.test_case "config mismatch" `Quick test_config_mismatch_rejected;
        ] );
      ("properties", props);
    ]
