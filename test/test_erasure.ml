(* Tests for lib/erasure: GF(256) field laws, systematic Reed–Solomon
   round-trips from every k-subset of fragments, the XOR fast path,
   corruption detection via fragment checksums and blob digests, and
   wire-codec boundary fuzz for the fragment framing. *)

open Dex_erasure

(* ------------------------- GF(256) ------------------------- *)

let test_gf_tables () =
  Alcotest.(check int) "exp 0" 1 (Gf.exp 0);
  Alcotest.(check int) "exp 1 = generator" 2 (Gf.exp 1);
  Alcotest.(check int) "exp wraps at 255" (Gf.exp 0) (Gf.exp 255);
  Alcotest.(check int) "log generator" 1 (Gf.log 2)

let test_gf_field_laws () =
  (* exhaustive over the whole field: mul/div/inv consistency *)
  for a = 0 to 255 do
    Alcotest.(check int) "a*0" 0 (Gf.mul a 0);
    Alcotest.(check int) "0*a" 0 (Gf.mul 0 a);
    Alcotest.(check int) "a*1" a (Gf.mul a 1);
    if a <> 0 then begin
      Alcotest.(check int) "a * inv a" 1 (Gf.mul a (Gf.inv a));
      Alcotest.(check int) "pow a 1" a (Gf.pow a 1);
      Alcotest.(check int) "pow a 2" (Gf.mul a a) (Gf.pow a 2)
    end
  done;
  for a = 0 to 255 do
    for b = 1 to 255 do
      let q = Gf.div a b in
      Alcotest.(check int) "div inverts mul" a (Gf.mul q b)
    done
  done

let test_gf_mul_commutes_qcheck () =
  QCheck.Test.make ~name:"gf mul commutative+associative" ~count:500
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c) ->
      Gf.mul a b = Gf.mul b a
      && Gf.mul a (Gf.mul b c) = Gf.mul (Gf.mul a b) c
      && Gf.mul a (b lxor c) = Gf.mul a b lxor Gf.mul a c)

(* ------------------------- RS codec ------------------------- *)

let blob_of_size seed len =
  String.init len (fun i -> Char.chr ((i * 131 + seed * 7 + i / 253) land 0xff))

(* all k-subsets of [0..n-1] *)
let rec subsets k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let check_all_subsets ~k ~n blob =
  let len = String.length blob in
  let frags = Rs.encode ~k ~n blob in
  Alcotest.(check int) "fragment count" n (Array.length frags);
  let sz = Rs.shard_size ~k len in
  Array.iter (fun f -> Alcotest.(check int) "shard size" sz (String.length f)) frags;
  (* systematic prefix: data shards concatenated re-form the blob *)
  let sys = String.concat "" (Array.to_list (Array.sub frags 0 k)) in
  Alcotest.(check string) "systematic prefix" blob
    (String.sub sys 0 len);
  let all = List.init n (fun i -> i) in
  List.iter
    (fun subset ->
      let picks = List.map (fun i -> (i, frags.(i))) subset in
      match Rs.decode ~k ~n ~len picks with
      | Some got -> Alcotest.(check string) "subset round-trip" blob got
      | None ->
          Alcotest.failf "decode failed for k=%d n=%d subset [%s]" k n
            (String.concat ";" (List.map string_of_int subset)))
    (subsets k all)

let test_rs_all_subsets () =
  List.iter
    (fun (k, n) ->
      List.iter
        (fun len -> check_all_subsets ~k ~n (blob_of_size (k + n) len))
        [ 0; 1; 7; 64; 257 ])
    [ (1, 2); (2, 3); (3, 4); (3, 5); (4, 6); (5, 9); (6, 7) ]

let test_rs_undersupplied () =
  let blob = blob_of_size 3 100 in
  let frags = Rs.encode ~k:3 ~n:5 blob in
  let picks = [ (0, frags.(0)); (4, frags.(4)) ] in
  Alcotest.(check bool) "k-1 fragments can't decode" true
    (Rs.decode ~k:3 ~n:5 ~len:100 picks = None);
  (* duplicates of the same index don't count twice *)
  let dup = [ (0, frags.(0)); (0, frags.(0)); (4, frags.(4)) ] in
  Alcotest.(check bool) "duplicate index rejected" true
    (Rs.decode ~k:3 ~n:5 ~len:100 dup = None)

let test_rs_bad_geometry () =
  Alcotest.check_raises "k=0" (Invalid_argument "Rs: bad geometry k=0 n=4")
    (fun () -> ignore (Rs.encode ~k:0 ~n:4 "x"));
  Alcotest.(check bool) "decode bad geometry is None" true
    (Rs.decode ~k:0 ~n:4 ~len:1 [] = None);
  Alcotest.(check bool) "wrong body length is skipped" true
    (Rs.decode ~k:2 ~n:3 ~len:10 [ (0, "short"); (1, "also") ] = None)

let test_rs_data_count () =
  Alcotest.(check int) "n=4 t=1" 3 (Rs.data_count ~n:4 ~t:1);
  Alcotest.(check int) "n=4 t=0 keeps parity" 3 (Rs.data_count ~n:4 ~t:0);
  Alcotest.(check int) "n=7 t=1" 6 (Rs.data_count ~n:7 ~t:1);
  Alcotest.(check int) "n=2 t=1" 1 (Rs.data_count ~n:2 ~t:1)

let test_rs_xor_fast_path_matches () =
  (* n = k+1: the parity fragment must equal the XOR of the data shards *)
  let blob = blob_of_size 9 500 in
  let k = 3 in
  let frags = Rs.encode ~k ~n:4 blob in
  let sz = Rs.shard_size ~k 500 in
  let expect =
    String.init sz (fun b ->
        Char.chr
          (Char.code frags.(0).[b] lxor Char.code frags.(1).[b]
          lxor Char.code frags.(2).[b]))
  in
  Alcotest.(check string) "parity = xor of shards" expect frags.(3)

let test_rs_qcheck_roundtrip () =
  QCheck.Test.make ~name:"rs random subset round-trip" ~count:200
    QCheck.(triple (int_range 1 8) (int_range 0 3) (string_of_size Gen.(0 -- 2000)))
    (fun (k, extra, blob) ->
      let n = k + 1 + extra in
      if n > 255 then true
      else begin
        let len = String.length blob in
        let frags = Rs.encode ~k ~n blob in
        (* drop the first n-k fragments: decode from the tail subset *)
        let picks =
          List.init k (fun j ->
              let i = n - 1 - j in
              (i, frags.(i)))
        in
        Rs.decode ~k ~n ~len picks = Some blob
      end)

(* ------------------------- fragments ------------------------- *)

let mk_frag ?(digest = 42) ?(index = 1) ?(total = 4) ?(data = 3) body =
  let len = String.length body * data in
  let frags = Rs.encode ~k:data ~n:total (blob_of_size 1 len) in
  ignore frags;
  Fragment.make ~digest ~index ~total ~data ~len body

let test_fragment_valid () =
  let blob = blob_of_size 5 300 in
  let frags = Rs.encode ~k:3 ~n:4 blob in
  Array.iteri
    (fun i body ->
      let f = Fragment.make ~digest:7 ~index:i ~total:4 ~data:3 ~len:300 body in
      Alcotest.(check bool) "fragment valid" true (Fragment.valid f))
    frags

let test_fragment_corruption_detected () =
  let blob = blob_of_size 6 300 in
  let frags = Rs.encode ~k:3 ~n:4 blob in
  let f = Fragment.make ~digest:7 ~index:0 ~total:4 ~data:3 ~len:300 frags.(0) in
  (* flip one byte of the body: checksum must catch it *)
  let bad_body = Bytes.of_string f.Fragment.body in
  Bytes.set bad_body 10 (Char.chr (Char.code (Bytes.get bad_body 10) lxor 1));
  let bad = { f with Fragment.body = Bytes.to_string bad_body } in
  Alcotest.(check bool) "corrupted body rejected" true (not (Fragment.valid bad));
  (* out-of-range metadata rejected *)
  Alcotest.(check bool) "index out of range" true
    (not (Fragment.valid { f with Fragment.index = 4 }));
  Alcotest.(check bool) "k > n" true
    (not (Fragment.valid { f with Fragment.data = 5 }));
  Alcotest.(check bool) "body length mismatch" true
    (not (Fragment.valid { f with Fragment.body = f.Fragment.body ^ "x" }))

let test_digest_catches_consistent_lie () =
  (* a Byzantine peer can send a fragment that is internally valid
     (checksum matches its corrupted body) — the blob digest computed
     after reconstruction is the detector of record *)
  let blob = blob_of_size 8 300 in
  let frags = Rs.encode ~k:3 ~n:4 blob in
  let lie = String.map (fun c -> Char.chr (Char.code c lxor 0xff)) frags.(1) in
  let f = Fragment.make ~digest:7 ~index:1 ~total:4 ~data:3 ~len:300 lie in
  Alcotest.(check bool) "lie passes per-fragment checks" true (Fragment.valid f);
  let picks = [ (0, frags.(0)); (1, lie); (2, frags.(2)) ] in
  (match Rs.decode ~k:3 ~n:4 ~len:300 picks with
  | None -> Alcotest.fail "decode should structurally succeed"
  | Some got ->
      Alcotest.(check bool) "reconstruction differs from blob" true (got <> blob);
      Alcotest.(check bool) "digest mismatch detected" true
        (Fragment.fnv64 got <> Fragment.fnv64 blob))

let test_fragment_codec_roundtrip () =
  let blob = blob_of_size 2 1000 in
  let frags = Rs.encode ~k:3 ~n:5 blob in
  Array.iteri
    (fun i body ->
      let f = Fragment.make ~digest:991 ~index:i ~total:5 ~data:3 ~len:1000 body in
      let got =
        Dex_codec.Codec.decode_exn Fragment.codec
          (Dex_codec.Codec.encode Fragment.codec f)
      in
      Alcotest.(check bool) "codec round-trip" true (f = got);
      Alcotest.(check bool) "still valid after round-trip" true (Fragment.valid got))
    frags

let test_fragment_codec_fuzz () =
  (* hostile bytes must produce Error or a well-typed fragment, never an
     unexpected exception; truncations of a valid encoding must not decode *)
  let f = mk_frag (String.make 34 'q') in
  let enc = Dex_codec.Codec.encode Fragment.codec f in
  for cut = 0 to String.length enc - 1 do
    match Dex_codec.Codec.decode Fragment.codec (String.sub enc 0 cut) with
    | Ok _ -> Alcotest.failf "truncation at %d decoded" cut
    | Error _ -> ()
  done;
  let rand = Random.State.make [| 0xe5a5 |] in
  for _ = 1 to 2000 do
    let len = Random.State.int rand 80 in
    let s = String.init len (fun _ -> Char.chr (Random.State.int rand 256)) in
    match Dex_codec.Codec.decode Fragment.codec s with
    | Ok g -> ignore (Fragment.valid g)
    | Error _ -> ()
  done

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "erasure"
    [
      ( "gf",
        [
          Alcotest.test_case "tables" `Quick test_gf_tables;
          Alcotest.test_case "field laws (exhaustive)" `Quick test_gf_field_laws;
        ] );
      qsuite "gf-props" [ test_gf_mul_commutes_qcheck () ];
      ( "rs",
        [
          Alcotest.test_case "all k-subsets round-trip" `Quick test_rs_all_subsets;
          Alcotest.test_case "undersupplied/duplicates" `Quick test_rs_undersupplied;
          Alcotest.test_case "bad geometry" `Quick test_rs_bad_geometry;
          Alcotest.test_case "data_count" `Quick test_rs_data_count;
          Alcotest.test_case "xor fast path" `Quick test_rs_xor_fast_path_matches;
        ] );
      qsuite "rs-props" [ test_rs_qcheck_roundtrip () ];
      ( "fragment",
        [
          Alcotest.test_case "valid" `Quick test_fragment_valid;
          Alcotest.test_case "corruption detected" `Quick test_fragment_corruption_detected;
          Alcotest.test_case "digest catches consistent lie" `Quick
            test_digest_catches_consistent_lie;
          Alcotest.test_case "codec round-trip" `Quick test_fragment_codec_roundtrip;
          Alcotest.test_case "codec boundary fuzz" `Quick test_fragment_codec_fuzz;
        ] );
    ]
