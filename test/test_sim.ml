(* Tests for dex_sim: engine ordering, determinism, stopping criteria,
   traces. *)

open Dex_sim

let test_fires_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  (match Engine.run e with
  | Engine.Quiescent -> ()
  | _ -> Alcotest.fail "expected quiescence");
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_same_time_insertion_order () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "insertion order" (List.init 10 Fun.id) (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:1.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule e ~delay:0.5 (fun () -> seen := Engine.now e :: !seen);
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "timestamps" [ 0.5; 1.5 ] (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain k () =
    incr count;
    if k > 0 then Engine.schedule e ~delay:1.0 (chain (k - 1))
  in
  Engine.schedule e ~delay:0.0 (chain 4);
  ignore (Engine.run e);
  Alcotest.(check int) "five firings" 5 !count;
  Alcotest.(check (float 1e-9)) "final time" 4.0 (Engine.now e)

let test_deadline () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  (match Engine.run ~until:5.0 e with
  | Engine.Deadline -> ()
  | _ -> Alcotest.fail "expected deadline stop");
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let test_event_limit () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule e ~delay:1.0 (fun () -> forever ()) in
  forever ();
  match Engine.run ~max_events:100 e with
  | Engine.Event_limit -> Alcotest.(check int) "count" 100 (Engine.events_processed e)
  | _ -> Alcotest.fail "expected event limit"

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative or non-finite delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_schedule_at_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:2.0 (fun () -> ());
  ignore (Engine.run e);
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ()))

let test_step () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:1.0 (fun () -> fired := true);
  Alcotest.(check bool) "step fires" true (Engine.step e);
  Alcotest.(check bool) "handler ran" true !fired;
  Alcotest.(check bool) "no more events" false (Engine.step e)

let test_due_count () =
  let e = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.due_count e);
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Engine.schedule e ~delay:2.0 (fun () -> ());
  Alcotest.(check int) "two due at t=1" 2 (Engine.due_count e);
  ignore (Engine.step e);
  Alcotest.(check int) "one left at t=1" 1 (Engine.due_count e);
  ignore (Engine.step e);
  Alcotest.(check int) "then the t=2 event" 1 (Engine.due_count e)

let test_step_nth_reorders () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 3 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  (* Fire the third event first; the remaining ones keep scheduling order. *)
  Alcotest.(check bool) "fired" true (Engine.step_nth e 2);
  while Engine.step e do
    ()
  done;
  Alcotest.(check (list int)) "order" [ 2; 0; 1; 3 ] (List.rev !log)

let test_step_nth_bounds () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty queue" false (Engine.step_nth e 0);
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Engine.schedule e ~delay:5.0 (fun () -> ());
  (* Only one event is due at the earliest instant — index 1 is out of
     range even though the queue holds two events. *)
  Alcotest.check_raises "beyond due set"
    (Invalid_argument "Engine.step_nth: index out of range") (fun () ->
      ignore (Engine.step_nth e 1));
  Alcotest.(check int) "queue intact" 2 (Engine.pending e);
  Alcotest.(check bool) "canonical still fires" true (Engine.step_nth e 0);
  Alcotest.(check int) "one left" 1 (Engine.pending e)

let test_step_nth_same_as_step_at_zero () =
  let run stepper =
    let e = Engine.create () in
    let log = ref [] in
    for i = 0 to 5 do
      Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
    done;
    while stepper e do
      ()
    done;
    List.rev !log
  in
  Alcotest.(check (list int)) "identical"
    (run Engine.step)
    (run (fun e -> Engine.step_nth e 0))

let test_trace_basic () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 "hello";
  Trace.recordf tr ~time:2.0 "value=%d" 42;
  Alcotest.(check int) "length" 2 (Trace.length tr);
  let labels = List.map (fun e -> e.Trace.label) (Trace.to_list tr) in
  Alcotest.(check (list string)) "labels" [ "hello"; "value=42" ] labels;
  Alcotest.(check int) "find" 1 (List.length (Trace.find tr ~sub:"value"))

let test_trace_capacity () =
  let tr = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.record tr ~time:(float_of_int i) (string_of_int i)
  done;
  Alcotest.(check bool) "bounded" true (Trace.length tr <= 10);
  Alcotest.(check bool) "dropped some" true (Trace.dropped tr > 0);
  (* The newest entry must always be retained. *)
  Alcotest.(check int) "newest kept" 1 (List.length (Trace.find tr ~sub:"25"))

let () =
  Alcotest.run "dex_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_fires_in_time_order;
          Alcotest.test_case "ties by insertion" `Quick test_same_time_insertion_order;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "event limit" `Quick test_event_limit;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "schedule_at past rejected" `Quick test_schedule_at_past_rejected;
          Alcotest.test_case "single step" `Quick test_step;
          Alcotest.test_case "due count" `Quick test_due_count;
          Alcotest.test_case "step_nth reorders" `Quick test_step_nth_reorders;
          Alcotest.test_case "step_nth bounds" `Quick test_step_nth_bounds;
          Alcotest.test_case "step_nth 0 = step" `Quick test_step_nth_same_as_step_at_zero;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basic;
          Alcotest.test_case "capacity bound" `Quick test_trace_capacity;
        ] );
    ]
