(* Chaos-lane tests: the deterministic fault-plan engine (plan-file
   round-trip, validation including the churn ≤t invariant, the
   same-seed-same-trace determinism regression, metrics integration), seeded
   live chaos rounds against real deployments in both io modes (partitions
   with heal, reorder+delay+dup mixes, crash-restart storms, Byzantine
   churn — zero agreement violations, zero duplicate applies, one-step
   fraction stays above zero), the timer-tombstone crash/restart regression,
   and the model checker's worst-case schedule search. *)

open Dex_service
module FP = Dex_runtime.Fault_plan
module R = Dex_metrics.Registry
module S = Server.Make (Dex_core.Dex.Lane (Dex_underlying.Uc_oracle))
module Sm = State_machine
module Model = Dex_mcheck.Dex_model
module Checker = Dex_mcheck.Checker
module Exec = Dex_mcheck.Exec

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --------------------------- fault plans --------------------------- *)

let rich_spec =
  {
    FP.seed = 42;
    rules =
      [
        (FP.All, { FP.drop = 0.05; dup = 0.02; reorder = 0.1; delay = 0.001; jitter = 0.002 });
        (FP.Link (0, 3), { FP.clean_rule with delay = 0.005 });
        (FP.From 2, { FP.clean_rule with drop = 0.2 });
        (FP.To 4, { FP.clean_rule with dup = 0.5 });
      ];
    cuts =
      [
        { FP.cut_a = [ 0; 1 ]; cut_b = [ 2; 3; 4; 5; 6 ]; symmetric = true; from_s = 1.0; until_s = 2.0 };
        { FP.cut_a = [ 0 ]; cut_b = [ 3 ]; symmetric = false; from_s = 2.5; until_s = 3.0 };
      ];
    storm =
      [
        { FP.s_at = 1.0; s_pid = 2; s_action = FP.Kill };
        { FP.s_at = 2.0; s_pid = 2; s_action = FP.Restart };
      ];
    churn =
      [
        { FP.c_at = 1.0; c_pid = 3; c_mode = FP.Churn_mute };
        { FP.c_at = 2.0; c_pid = 3; c_mode = FP.Churn_honest };
        { FP.c_at = 2.5; c_pid = 3; c_mode = FP.Churn_equiv };
        { FP.c_at = 3.0; c_pid = 3; c_mode = FP.Churn_honest };
      ];
  }

let test_plan_roundtrip () =
  (match FP.validate ~n:7 ~t:1 rich_spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rich spec rejected: %s" e);
  let reparsed = FP.of_string (FP.to_string rich_spec) in
  Alcotest.(check bool) "spec round-trips through the plan text" true (reparsed = rich_spec);
  (* And the round-trip is a fixpoint. *)
  Alcotest.(check string) "printing is stable" (FP.to_string rich_spec)
    (FP.to_string reparsed)

let test_validate_rejects () =
  let expect_error what spec =
    match FP.validate ~n:7 ~t:1 spec with
    | Ok () -> Alcotest.failf "%s: expected rejection" what
    | Error _ -> ()
  in
  expect_error "pid out of range"
    { FP.empty_spec with rules = [ (FP.From 7, FP.clean_rule) ] };
  expect_error "probability out of range"
    { FP.empty_spec with rules = [ (FP.All, { FP.clean_rule with drop = 1.5 }) ] };
  expect_error "negative delay"
    { FP.empty_spec with rules = [ (FP.All, { FP.clean_rule with delay = -1.0 }) ] };
  expect_error "inverted cut window"
    {
      FP.empty_spec with
      cuts =
        [ { FP.cut_a = [ 0 ]; cut_b = [ 1 ]; symmetric = true; from_s = 2.0; until_s = 1.0 } ];
    };
  expect_error "storm restart without kill"
    { FP.empty_spec with storm = [ { FP.s_at = 1.0; s_pid = 2; s_action = FP.Restart } ] }

let test_churn_beyond_t_rejected () =
  (* Two replicas Byzantine at once under t=1: the sweep must reject with a
     message naming the invariant, not silently launch an >t adversary. *)
  let spec =
    {
      FP.empty_spec with
      churn =
        [
          { FP.c_at = 0.1; c_pid = 3; c_mode = FP.Churn_mute };
          { FP.c_at = 0.2; c_pid = 4; c_mode = FP.Churn_equiv };
        ];
    }
  in
  match FP.validate ~n:7 ~t:1 spec with
  | Ok () -> Alcotest.fail "churn schedule with 2 concurrent Byzantine accepted at t=1"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the invariant (%s)" msg)
      true
      (has_prefix ~prefix:"churn schedule exceeds t=1" msg);
    (* The same schedule is fine once the first replica turns honest again. *)
    let healed =
      {
        spec with
        FP.churn =
          spec.FP.churn
          @ [ { FP.c_at = 0.15; c_pid = 3; c_mode = FP.Churn_honest } ];
      }
    in
    (match FP.validate ~n:7 ~t:1 healed with
    | Ok () -> ()
    | Error e -> Alcotest.failf "healed schedule rejected: %s" e)

(* Script the same decide calls against a plan: a fixed grid of plan-relative
   times and links, covering the cut window. *)
let scripted_decisions plan =
  let out = ref [] in
  for k = 0 to 199 do
    let now = 0.02 *. float k in
    for src = 0 to 3 do
      for dst = 0 to 3 do
        if src <> dst then out := FP.decide plan ~now ~src ~dst :: !out
      done
    done
  done;
  List.rev !out

let noisy_spec seed =
  {
    FP.empty_spec with
    seed;
    rules =
      [ (FP.All, { FP.drop = 0.2; dup = 0.2; reorder = 0.2; delay = 0.001; jitter = 0.002 }) ];
    cuts =
      [ { FP.cut_a = [ 0 ]; cut_b = [ 1 ]; symmetric = false; from_s = 1.0; until_s = 2.0 } ];
  }

let test_same_seed_same_trace () =
  (* The determinism regression: two engines over the same spec, the same
     scripted sends — identical verdicts and an identical injected-event
     trace, link by link. This is what makes chaos failures replayable. *)
  let a = FP.make (noisy_spec 7) and b = FP.make (noisy_spec 7) in
  let da = scripted_decisions a and db = scripted_decisions b in
  Alcotest.(check bool) "identical decisions" true (da = db);
  Alcotest.(check bool) "identical per-link traces" true
    (FP.trace_by_link a = FP.trace_by_link b);
  (* And the trace is non-trivial: at these rates the grid must inject. *)
  Alcotest.(check bool) "events were injected" true (List.length (FP.trace a) > 100);
  (* A different seed diverges (with overwhelming probability at 2400
     draws). *)
  let c = FP.make (noisy_spec 8) in
  let dc = scripted_decisions c in
  Alcotest.(check bool) "different seed, different trace" true (dc <> da)

let test_counts_and_metrics () =
  let reg = R.create () in
  let plan = FP.make ~metrics:reg (noisy_spec 3) in
  let n_calls = List.length (scripted_decisions plan) in
  let counts = FP.counts plan in
  Alcotest.(check int) "every send consulted" n_calls counts.FP.sent;
  (* Each trace event carries exactly one kind; under the trace cap the
     per-kind counters tally the trace. *)
  let tally kind =
    List.length (List.filter (fun e -> e.FP.e_kind = kind) (FP.trace plan))
  in
  Alcotest.(check int) "drops counted" (tally FP.Dropped) counts.FP.dropped;
  Alcotest.(check int) "dups counted" (tally FP.Duplicated) counts.FP.duplicated;
  Alcotest.(check int) "delays counted" (tally FP.Delayed) counts.FP.delayed;
  Alcotest.(check int) "reorders counted" (tally FP.Reordered) counts.FP.reordered;
  Alcotest.(check int) "cut drops counted" (tally FP.Cut_drop) counts.FP.cut_dropped;
  (* The registry mirrors the counters. *)
  let snap = R.snapshot reg in
  Alcotest.(check int) "chaos/sent in metrics" counts.FP.sent (R.get snap "chaos/sent");
  Alcotest.(check int) "chaos/drops in metrics" counts.FP.dropped (R.get snap "chaos/drops");
  Alcotest.(check int) "chaos/dups in metrics" counts.FP.duplicated (R.get snap "chaos/dups")

(* ------------------------ live chaos rounds ------------------------ *)

(* Real sockets, real threads, a real fault plan on the mesh: n=7 t=1 under
   P_freq (the gauntlet dimensions). Each round drives closed-loop client
   load while the plan's storm/churn schedule executes, then checks the
   chaos contract: progress, zero agreement violations, zero duplicate
   applies, and a one-step fraction that degrades without dying. *)

let freq7 = Dex_condition.Pair.freq ~n:7 ~t:1

let counter_of s =
  match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let round_duration = 0.6

let chaos_round ~io_mode ~roles ?data_dir spec =
  (match FP.validate ~n:7 ~t:1 spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid spec: %s" e);
  let cfg = S.config ?data_dir ~io_mode ~pair:(fun _ -> freq7) ~n:7 ~t:1 () in
  let d = S.launch ~roles ~chaos:(FP.make spec) cfg in
  Fun.protect ~finally:(fun () -> S.shutdown d) @@ fun () ->
  let sched_err = ref None in
  let scheduler =
    Thread.create
      (fun () ->
        try S.run_chaos_schedule d
        with e -> sched_err := Some (Printexc.to_string e))
      ()
  in
  let c = Client.connect ~io_mode ~client:1 (List.map snd d.S.ports) in
  let r = Client.Load.run ~duration:round_duration c (fun _ -> Sm.Add ("k", 1)) in
  Client.close c;
  Thread.join scheduler;
  (* Back to honest before the agreement sweep so in-flight slots settle. *)
  List.iter (fun (p, _) -> S.set_churn_mode d p Dex_net.Adversary.Churn_honest) d.S.churn_cells;
  Thread.delay 0.3;
  (match !sched_err with
  | Some e -> Alcotest.failf "chaos scheduler failed: %s" e
  | None -> ());
  let name fmt = Printf.sprintf ("seed %d: " ^^ fmt) spec.FP.seed in
  Alcotest.(check bool) (name "committed under chaos") true (r.Client.Load.committed > 0);
  Alcotest.(check bool)
    (name "one-step fraction stays above zero (%d of %d)" r.Client.Load.one_step
       r.Client.Load.committed)
    true (r.Client.Load.one_step > 0);
  let compared, violations = S.agreement_violations d in
  Alcotest.(check bool) (name "slots compared") true (compared > 0);
  Alcotest.(check int) (name "no agreement violations") 0 (List.length violations);
  List.iter
    (fun (p, s) ->
      Alcotest.(check bool)
        (name "replica %d no duplicate applies" p)
        true
        (counter_of s <= r.Client.Load.issued))
    d.S.servers

let all_correct _ = Server.Correct

let mild_noise = { FP.clean_rule with drop = 0.01; delay = 0.0005; jitter = 0.001 }

(* The four single-adversary mixes from the chaos gauntlet, scaled to the
   round duration. *)

let mix_partition seed =
  {
    FP.empty_spec with
    seed;
    rules = [ (FP.All, mild_noise) ];
    cuts =
      [
        {
          FP.cut_a = [ 0; 1 ];
          cut_b = [ 2; 3; 4; 5; 6 ];
          symmetric = true;
          from_s = 0.25 *. round_duration;
          until_s = 0.55 *. round_duration;
        };
      ];
  }

let mix_reorder seed =
  {
    FP.empty_spec with
    seed;
    rules =
      [ (FP.All, { FP.drop = 0.02; dup = 0.05; reorder = 0.25; delay = 0.002; jitter = 0.004 }) ];
  }

let mix_storm seed =
  {
    FP.empty_spec with
    seed;
    rules = [ (FP.All, mild_noise) ];
    storm =
      [
        { FP.s_at = 0.25 *. round_duration; s_pid = 2; s_action = FP.Kill };
        { FP.s_at = 0.6 *. round_duration; s_pid = 2; s_action = FP.Restart };
      ];
  }

let mix_churn seed =
  {
    FP.empty_spec with
    seed;
    rules = [ (FP.All, mild_noise) ];
    churn =
      [
        { FP.c_at = 0.15 *. round_duration; c_pid = 5; c_mode = FP.Churn_mute };
        { FP.c_at = 0.45 *. round_duration; c_pid = 5; c_mode = FP.Churn_honest };
        { FP.c_at = 0.6 *. round_duration; c_pid = 5; c_mode = FP.Churn_equiv };
        { FP.c_at = 0.85 *. round_duration; c_pid = 5; c_mode = FP.Churn_honest };
      ];
  }

let churn_roles p = if p = 5 then Server.Churn else Server.Correct

let run_rounds ~io_mode ~seeds mk =
  List.iter
    (fun seed ->
      let spec = mk seed in
      let roles = if spec.FP.churn = [] then all_correct else churn_roles in
      if spec.FP.storm = [] then chaos_round ~io_mode ~roles spec
      else begin
        (* Storm rounds restart from disk: give them a scratch data dir. *)
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "dex-chaos-test-%d-%d" (Unix.getpid ()) seed)
        in
        rm_rf dir;
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () -> chaos_round ~io_mode ~roles ~data_dir:dir spec)
      end)
    seeds

(* 20 distinct seeds across the four mixes and both io modes. *)

let reactor = Dex_runtime.Transport.Reactor
let threads = Dex_runtime.Transport.Threads

let test_partition_reactor () = run_rounds ~io_mode:reactor ~seeds:[ 101; 102; 103 ] mix_partition
let test_reorder_reactor () = run_rounds ~io_mode:reactor ~seeds:[ 111; 112; 113 ] mix_reorder
let test_storm_reactor () = run_rounds ~io_mode:reactor ~seeds:[ 121; 122; 123 ] mix_storm
let test_churn_reactor () = run_rounds ~io_mode:reactor ~seeds:[ 131; 132; 133 ] mix_churn
let test_partition_threads () = run_rounds ~io_mode:threads ~seeds:[ 201; 202 ] mix_partition
let test_reorder_threads () = run_rounds ~io_mode:threads ~seeds:[ 211; 212 ] mix_reorder
let test_storm_threads () = run_rounds ~io_mode:threads ~seeds:[ 221; 222 ] mix_storm
let test_churn_threads () = run_rounds ~io_mode:threads ~seeds:[ 231; 232 ] mix_churn

(* --------------------- timer tombstone regression --------------------- *)

let freq4 = Dex_condition.Pair.freq ~n:4 ~t:0

let test_timer_tombstones () =
  (* A reactor deployment with an aggressive batcher cadence keeps
     batch-cut and watchdog timers armed at all times. Kill a replica with
     timers pending and restart it immediately, repeatedly, under load: the
     killed incarnation's timers must not fire into the restarted instance
     (the cluster's per-node generation guard and the tracked cut timer).
     Before the guards, a stale tick could drive the new instance's batcher
     off-cadence or replay a cut into a recovering pipeline. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dex-tombstone-test-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg =
    S.config ~data_dir:dir ~io_mode:reactor ~batch_delay:0.005 ~catchup_grace:2.0
      ~pair:(fun _ -> freq4)
      ~n:4 ~t:0 ()
  in
  let d = S.launch cfg in
  Fun.protect ~finally:(fun () -> S.shutdown d) @@ fun () ->
  let c = Client.connect ~io_mode:reactor ~client:1 (List.map snd d.S.ports) in
  let result = ref None in
  let loader =
    Thread.create
      (fun () -> result := Some (Client.Load.run ~duration:2.2 c (fun _ -> Sm.Add ("k", 1))))
      ()
  in
  Thread.delay 0.4;
  for _ = 1 to 3 do
    S.kill_replica d 2;
    Thread.delay 0.1;
    ignore (S.restart_replica d 2);
    Thread.delay 0.4
  done;
  Thread.join loader;
  Client.close c;
  let r = Option.get !result in
  Alcotest.(check bool) "committed across the restart storm" true
    (r.Client.Load.committed > 0);
  let converged () =
    match
      List.sort_uniq compare (List.map (fun (_, s) -> S.state_digest s) d.S.servers)
    with
    | [ _ ] -> true
    | _ -> false
  in
  let deadline = Unix.gettimeofday () +. 15.0 in
  while (not (converged ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.1
  done;
  Alcotest.(check bool) "reconverged after the storm" true (converged ());
  let compared, violations = S.agreement_violations d in
  Alcotest.(check bool) "slots compared" true (compared > 0);
  Alcotest.(check int) "no agreement violations" 0 (List.length violations);
  List.iter
    (fun (p, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d no duplicate applies" p)
        true
        (counter_of s <= r.Client.Load.issued))
    d.S.servers

(* ---------------------- worst-case schedule search ---------------------- *)

let churn_scenario =
  {
    Model.lane = Dex_core.Protocol_lane.Dex;
    kind = Model.Freq;
    n = 7;
    t = 1;
    proposals = [ 1; 0; 0; 0; 0; 0; 0 ];
    faults =
      [
        ( 0,
          Model.Churn_sched
            [ (0, Dex_net.Adversary.Churn_mute); (6, Dex_net.Adversary.Churn_honest) ] );
      ];
    mutation = None;
  }

let fifo_loss scenario =
  let t = Exec.create (Model.system scenario) in
  ignore (Exec.run_fifo t);
  Model.one_step_loss scenario (Exec.summary t)

let search_bounds =
  { Checker.default_bounds with Checker.delay_budget = 1; max_schedules = 50_000 }

let test_churn_model_safe () =
  (* Dynamic churn in the model checker: exhaustively exploring the budget-1
     neighbourhood of a mute→honest churn run finds no violation — the
     live adversary vocabulary is safe offline too. *)
  let o =
    Checker.explore ~sys:(Model.system churn_scenario) ~bounds:search_bounds
      ~check:(Model.check churn_scenario) ()
  in
  Alcotest.(check bool) "space exhausted" true o.Checker.stats.Checker.exhausted;
  Alcotest.(check bool) "no violation under churn" true (o.Checker.violation = None)

let test_search_finds_worst_case () =
  let fifo = fifo_loss churn_scenario in
  let search () =
    Checker.search ~sys:(Model.system churn_scenario) ~bounds:search_bounds
      ~score:(Model.one_step_loss churn_scenario) ()
  in
  let o = search () in
  Alcotest.(check bool) "in-budget space exhausted" true
    o.Checker.search_stats.Checker.exhausted;
  (match o.Checker.best with
  | None -> Alcotest.fail "no schedule completed"
  | Some (score, schedule) ->
    Alcotest.(check bool) "worst case at least as bad as FIFO" true (score >= fifo);
    (* The emitted schedule replays to exactly the score the search
       reported — the property that makes it a usable plan. *)
    let t = Exec.replay ~loose:true (Model.system churn_scenario) schedule in
    ignore (Exec.run_fifo t);
    Alcotest.(check int) "schedule replays to its score" score
      (Model.one_step_loss churn_scenario (Exec.summary t)));
  (* The search is deterministic: run twice, same optimum. *)
  let o2 = search () in
  Alcotest.(check bool) "deterministic optimum" true (o.Checker.best = o2.Checker.best)

let test_churn_counterexample_roundtrip () =
  (* The counterexample file format carries churn faults, so worst-case
     schedules over churn scenarios persist and reload. *)
  let file =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dex-chaos-cex-%d.txt" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
  @@ fun () ->
  let schedule =
    [ { Exec.src = 0; dst = 1; kind = Exec.Message; chan = 0 } ]
  in
  Model.save_counterexample ~file churn_scenario schedule
    (Dex_mcheck.Oracles.Termination { pid = 1 });
  let scenario', schedule' = Model.load_counterexample ~file in
  Alcotest.(check bool) "scenario round-trips" true (scenario' = churn_scenario);
  Alcotest.(check bool) "schedule round-trips" true (schedule' = schedule)

let () =
  Alcotest.run "dex_chaos"
    [
      ( "fault_plan",
        [
          Alcotest.test_case "plan text round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "validation rejects malformed specs" `Quick test_validate_rejects;
          Alcotest.test_case "churn beyond t rejected" `Quick test_churn_beyond_t_rejected;
          Alcotest.test_case "same seed, same trace" `Quick test_same_seed_same_trace;
          Alcotest.test_case "counts and metrics" `Quick test_counts_and_metrics;
        ] );
      ( "live_reactor",
        [
          Alcotest.test_case "partition with heal" `Slow test_partition_reactor;
          Alcotest.test_case "reorder + delay + dup" `Slow test_reorder_reactor;
          Alcotest.test_case "crash-restart storm" `Slow test_storm_reactor;
          Alcotest.test_case "byzantine churn" `Slow test_churn_reactor;
        ] );
      ( "live_threads",
        [
          Alcotest.test_case "partition with heal" `Slow test_partition_threads;
          Alcotest.test_case "reorder + delay + dup" `Slow test_reorder_threads;
          Alcotest.test_case "crash-restart storm" `Slow test_storm_threads;
          Alcotest.test_case "byzantine churn" `Slow test_churn_threads;
        ] );
      ( "regressions",
        [ Alcotest.test_case "timer tombstones" `Slow test_timer_tombstones ] );
      ( "worst_case",
        [
          Alcotest.test_case "churn model safe" `Quick test_churn_model_safe;
          Alcotest.test_case "search finds worst case" `Quick test_search_finds_worst_case;
          Alcotest.test_case "churn counterexample round-trip" `Quick
            test_churn_counterexample_roundtrip;
        ] );
    ]
