(* Tests for dex_service: wire/batch codecs, canonical-batch and digest
   properties, and live loopback deployments (real sockets, real threads) —
   throughput sanity, session dedupe / idempotent retry, and an equivocating
   replica that must not break agreement or exactly-once application. *)

open Dex_service
module Codec = Dex_codec.Codec
module S = Server.Make (Dex_core.Dex.Lane (Dex_underlying.Uc_oracle))
module Sm = State_machine

let roundtrip codec v = Codec.decode_exn codec (Codec.encode codec v)

(* ----------------------------- codecs ----------------------------- *)

let sample_commands =
  [ Sm.Nop; Sm.Get "k"; Sm.Set ("key", 42); Sm.Add ("", -7); Sm.Del "gone" ]

let test_command_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "command" true (roundtrip Sm.command_codec c = c))
    sample_commands

let test_request_roundtrip () =
  List.iteri
    (fun i c ->
      let r = { Wire.client = 3 + i; rid = i * 17; command = c } in
      Alcotest.(check bool) "request" true (roundtrip Wire.request_codec r = r))
    sample_commands

let test_reply_roundtrip () =
  let replies =
    [
      { Wire.client = 1; rid = 0; outcome = Wire.Busy };
      {
        Wire.client = 2;
        rid = 9;
        outcome =
          Wire.Applied
            { output = Sm.Count 4; slot = 12; provenance = Dex_core.Dex.One_step };
      };
      {
        Wire.client = 2;
        rid = 10;
        outcome =
          Wire.Applied
            { output = Sm.Found None; slot = 13; provenance = Dex_core.Dex.Underlying };
      };
    ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "reply" true (roundtrip Wire.reply_codec r = r))
    replies

let test_batch_roundtrip () =
  let batch =
    Batch.canonical
      (List.mapi (fun i c -> { Wire.client = i mod 2; rid = i; command = c }) sample_commands)
  in
  Alcotest.(check bool) "batch" true (roundtrip Batch.codec batch = batch)

(* Wire round-trips for the dissemination-lane messages (smsg tags 9-12),
   plus boundary fuzz: no truncation of a fragment-bearing frame may decode
   into a different valid message. *)
let test_smsg_dissemination_roundtrip () =
  let frag =
    Dex_erasure.Fragment.make ~digest:0x5ca1ab1e ~index:2 ~total:4 ~data:3 ~len:11
      "abcd"
  in
  let msgs =
    [
      S.Frag_request (12345, 0b1011, 7);
      S.Frag_request (1, 0, 0);
      S.Frag_payload frag;
      S.Snapshot_frag { slot = 99; frag };
      S.Snapshot_fetch_full 42;
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "smsg roundtrip" true (roundtrip S.smsg_codec m = m))
    msgs

let test_smsg_fragment_boundary_fuzz () =
  let frag =
    Dex_erasure.Fragment.make ~digest:max_int ~index:3 ~total:4 ~data:3 ~len:300
      (String.init 100 (fun i -> Char.chr (i mod 256)))
  in
  let check_msg m =
    let bytes = Codec.encode S.smsg_codec m in
    (* Every strict prefix must fail to decode or decode to something else —
       never silently round-trip to the original. *)
    for cut = 0 to String.length bytes - 1 do
      match Codec.decode S.smsg_codec (String.sub bytes 0 cut) with
      | Error _ -> ()
      | Ok m' -> Alcotest.(check bool) "truncated frame is not the original" true (m' <> m)
    done
  in
  check_msg (S.Frag_payload frag);
  check_msg (S.Snapshot_frag { slot = 12; frag });
  (* Random byte soup must never crash the decoder. *)
  let rng = Random.State.make [| 0xd15ea5e |] in
  for _ = 1 to 2000 do
    let s =
      String.init (Random.State.int rng 64) (fun _ -> Char.chr (Random.State.int rng 256))
    in
    ignore (Codec.decode S.smsg_codec s)
  done

(* ------------------------ batch properties ------------------------ *)

let req client rid = { Wire.client; rid; command = Sm.Set ("k", rid) }

let test_canonical_sorts_and_dedupes () =
  let messy = [ req 2 1; req 1 5; req 2 1; req 1 3; req 1 5 ] in
  let b = Batch.canonical messy in
  Alcotest.(check (list (pair int int)))
    "sorted by (client, rid), duplicates removed"
    [ (1, 3); (1, 5); (2, 1) ]
    (List.map (fun (r : Wire.request) -> (r.Wire.client, r.Wire.rid)) b)

let test_canonical_cap_keeps_smallest () =
  let b = Batch.canonical ~cap:2 [ req 3 0; req 1 9; req 1 2; req 2 4 ] in
  Alcotest.(check (list (pair int int)))
    "cap keeps the smallest keys"
    [ (1, 2); (1, 9) ]
    (List.map (fun (r : Wire.request) -> (r.Wire.client, r.Wire.rid)) b)

let test_digest_order_insensitive () =
  let reqs = [ req 1 1; req 2 2; req 3 3 ] in
  let d1 = Batch.digest (Batch.canonical reqs) in
  let d2 = Batch.digest (Batch.canonical (List.rev reqs)) in
  Alcotest.(check int) "same canonical batch, same digest" d1 d2;
  Alcotest.(check bool) "non-empty digest is positive nonzero" true (d1 > 0)

let test_digest_distinguishes () =
  let d1 = Batch.digest (Batch.canonical [ req 1 1 ]) in
  let d2 = Batch.digest (Batch.canonical [ req 1 2 ]) in
  Alcotest.(check bool) "different batches, different digests" true (d1 <> d2)

let test_empty_digest_reserved () =
  Alcotest.(check int) "empty batch digest" Batch.empty_digest
    (Batch.digest (Batch.canonical []));
  Alcotest.(check int) "reserved value" 0 Batch.empty_digest

(* ------------------------- state machine ------------------------- *)

let test_state_machine_semantics () =
  let m = Sm.create () in
  Alcotest.(check bool) "nop" true (Sm.apply m Sm.Nop = Sm.Done);
  Alcotest.(check bool) "get missing" true (Sm.apply m (Sm.Get "a") = Sm.Found None);
  ignore (Sm.apply m (Sm.Set ("a", 5)));
  Alcotest.(check bool) "get" true (Sm.apply m (Sm.Get "a") = Sm.Found (Some 5));
  Alcotest.(check bool) "add" true (Sm.apply m (Sm.Add ("a", 2)) = Sm.Count 7);
  Alcotest.(check bool) "add fresh" true (Sm.apply m (Sm.Add ("b", 1)) = Sm.Count 1);
  Alcotest.(check bool) "del" true (Sm.apply m (Sm.Del "a") = Sm.Removed true);
  Alcotest.(check bool) "del again" true (Sm.apply m (Sm.Del "a") = Sm.Removed false);
  Alcotest.(check (list (pair string int))) "snapshot" [ ("b", 1) ] (Sm.snapshot m)

let test_state_machine_digest_converges () =
  let a = Sm.create () and b = Sm.create () in
  ignore (Sm.apply a (Sm.Set ("x", 1)));
  ignore (Sm.apply a (Sm.Set ("y", 2)));
  ignore (Sm.apply b (Sm.Set ("y", 2)));
  ignore (Sm.apply b (Sm.Set ("x", 1)));
  Alcotest.(check int) "same state, same digest" (Sm.digest a) (Sm.digest b);
  ignore (Sm.apply b (Sm.Set ("x", 3)));
  Alcotest.(check bool) "diverged digests differ" true (Sm.digest a <> Sm.digest b)

(* ------------------------ live deployments ------------------------ *)

(* Real sockets and threads below; parameters kept small so the whole suite
   stays fast. *)

let freq4 = Dex_condition.Pair.freq ~n:4 ~t:0

let counter_of s =
  match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0

let with_deployment ?roles cfg f =
  let d = S.launch ?roles cfg in
  Fun.protect ~finally:(fun () -> S.shutdown d) (fun () -> f d)

let test_deployment_commits_one_step () =
  let cfg = S.config ~pair:(fun _ -> freq4) ~n:4 ~t:0 () in
  with_deployment cfg (fun d ->
      let c = Client.connect ~client:1 (List.map snd d.S.ports) in
      let r =
        Client.Load.run_many ~clients:8 ~duration:1.0 c (fun i ->
            Sm.Set (Printf.sprintf "k%d" (i mod 8), i))
      in
      Client.close c;
      Thread.delay 0.3;
      Alcotest.(check bool) "committed work" true (r.Client.Load.committed > 100);
      Alcotest.(check bool) "one-step path dominates" true
        (r.Client.Load.one_step * 2 > r.Client.Load.committed);
      let compared, violations = S.agreement_violations d in
      Alcotest.(check bool) "slots compared" true (compared > 0);
      Alcotest.(check int) "no agreement violations" 0 (List.length violations);
      let digests =
        List.sort_uniq compare (List.map (fun (_, s) -> S.state_digest s) d.S.servers)
      in
      Alcotest.(check int) "replica states converged" 1 (List.length digests))

let test_session_dedupe_idempotent_retry () =
  let cfg = S.config ~pair:(fun _ -> freq4) ~n:4 ~t:0 () in
  with_deployment cfg (fun d ->
      (* Raw connections, no Client machinery: submit to all replicas (the
         liveness contract — the oracle decides by plurality, so a request
         known to one replica alone never wins a slot), then retransmit the
         byte-identical request. The retry must answer from the session
         cache with the original slot, and no replica may re-execute. *)
      let conns =
        List.map
          (fun (_, port) ->
            let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock))
          d.S.ports
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun (sock, _, _) -> try Unix.close sock with Unix.Unix_error _ -> ())
            conns)
        (fun () ->
          let request = { Wire.client = 42; rid = 0; command = Sm.Add ("k", 1) } in
          let _, first_ic, _ = List.hd conns in
          let send () =
            List.iter
              (fun (_, _, oc) ->
                Wire.write_request oc request;
                flush oc)
              conns;
            let rec wait () =
              let reply = Wire.read_reply first_ic in
              match reply.Wire.outcome with
              | Wire.Applied { output; slot; _ } when reply.Wire.rid = 0 -> (output, slot)
              | _ -> wait ()
            in
            wait ()
          in
          let output1, slot1 = send () in
          Alcotest.(check bool) "applied once" true (output1 = Sm.Count 1);
          (* Retransmit of the same (client, rid). *)
          let output2, slot2 = send () in
          Alcotest.(check bool) "cached outcome" true (output2 = Sm.Count 1);
          Alcotest.(check int) "same slot" slot1 slot2;
          Thread.delay 0.5;
          List.iter
            (fun (p, s) ->
              Alcotest.(check int)
                (Printf.sprintf "replica %d applied exactly once" p)
                1 (counter_of s))
            d.S.servers))

let test_equivocator_deployment () =
  (* n=6 t=1 under the privileged pair (n > 5t), replica 5 equivocating:
     the service must keep committing with clean agreement and no duplicate
     application. *)
  let pair = Dex_condition.Pair.privileged ~n:6 ~t:1 ~m:0 in
  let cfg = S.config ~pair:(fun _ -> pair) ~n:6 ~t:1 () in
  let roles p = if p = 5 then Server.Equivocator else Server.Correct in
  with_deployment ~roles cfg (fun d ->
      Alcotest.(check int) "five correct servers" 5 (List.length d.S.servers);
      let c = Client.connect ~client:1 (List.map snd d.S.ports) in
      let r = Client.Load.run ~duration:1.5 c (fun _ -> Sm.Add ("k", 1)) in
      Client.close c;
      Thread.delay 0.5;
      Alcotest.(check bool) "committed despite the equivocator" true
        (r.Client.Load.committed > 0);
      let compared, violations = S.agreement_violations d in
      Alcotest.(check bool) "slots compared" true (compared > 0);
      Alcotest.(check int) "no agreement violations" 0 (List.length violations);
      List.iter
        (fun (p, s) ->
          Alcotest.(check bool)
            (Printf.sprintf "replica %d no duplicate applies" p)
            true
            (counter_of s <= r.Client.Load.issued))
        d.S.servers)

let test_commit_log_bounded () =
  (* [commit_log_cap] bounds the per-replica commit history (a long-lived
     server must not leak one entry per slot). Truncation is lazy at twice
     the cap, so after committing well past that the retained log must sit
     at or under [2 * cap]. *)
  let cap = 4 in
  let cfg = S.config ~commit_log_cap:cap ~pair:(fun _ -> freq4) ~n:4 ~t:0 () in
  with_deployment cfg (fun d ->
      let c = Client.connect ~client:1 (List.map snd d.S.ports) in
      let r =
        Client.Load.run_many ~clients:8 ~duration:1.0 c (fun i ->
            Sm.Set (Printf.sprintf "k%d" (i mod 8), i))
      in
      Client.close c;
      Thread.delay 0.3;
      Alcotest.(check bool) "committed work" true (r.Client.Load.committed > 0);
      List.iter
        (fun (p, s) ->
          let stats = S.stats s in
          Alcotest.(check bool)
            (Printf.sprintf "replica %d committed past the truncation point" p)
            true
            (stats.S.committed_slots > 2 * cap);
          Alcotest.(check bool)
            (Printf.sprintf "replica %d commit log bounded" p)
            true
            (List.length (S.commit_log s) <= 2 * cap))
        d.S.servers)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_durable_restart_recovers () =
  (* The full durability lane, end to end: a durable n=4 t=0 deployment
     under client load loses replica 2 to a crash-stop (WAL abandoned
     mid-flight) and restarts it from disk. The restarted replica must
     replay its durable prefix, catch the missed slots up over the peer
     lane, reconverge with the others, and the deployment must show zero
     lost acknowledged commits and zero duplicate applies. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dex-service-test-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let cfg =
    S.config ~data_dir:dir ~snapshot_every:64 ~catchup_grace:2.0
      ~pair:(fun _ -> freq4)
      ~n:4 ~t:0 ()
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_deployment cfg (fun d ->
      let c = Client.connect ~client:1 (List.map snd d.S.ports) in
      let result = ref None in
      let loader =
        Thread.create
          (fun () ->
            result := Some (Client.Load.run ~duration:2.4 c (fun _ -> Sm.Add ("k", 1))))
          ()
      in
      Thread.delay 0.8;
      S.kill_replica d 2;
      Thread.delay 0.5;
      let s2 = S.restart_replica d 2 in
      let at_restart = S.stats s2 in
      Thread.join loader;
      Client.close c;
      let r = Option.get !result in
      let converged () =
        (not (S.catching_up s2))
        &&
        match
          List.sort_uniq compare (List.map (fun (_, s) -> S.state_digest s) d.S.servers)
        with
        | [ _ ] -> true
        | _ -> false
      in
      let deadline = Unix.gettimeofday () +. 15.0 in
      while (not (converged ())) && Unix.gettimeofday () < deadline do
        Thread.delay 0.1
      done;
      Alcotest.(check bool) "committed work" true (r.Client.Load.committed > 0);
      Alcotest.(check bool) "replayed durable slots on restart" true
        (at_restart.S.recovered_slots > 0);
      Alcotest.(check bool) "durability lane active" true (S.wal_stats s2 <> None);
      Alcotest.(check bool) "durable watermark advanced" true (S.durable_lsn s2 > 0);
      Alcotest.(check bool) "reconverged after restart" true (converged ());
      let compared, violations = S.agreement_violations d in
      Alcotest.(check bool) "slots compared" true (compared > 0);
      Alcotest.(check int) "no agreement violations" 0 (List.length violations);
      List.iter
        (fun (p, s) ->
          let cnt = counter_of s in
          Alcotest.(check bool)
            (Printf.sprintf "replica %d kept every acked commit" p)
            true
            (cnt >= r.Client.Load.committed);
          Alcotest.(check bool)
            (Printf.sprintf "replica %d no duplicate applies" p)
            true
            (cnt <= r.Client.Load.issued))
        d.S.servers)

let test_coded_dissemination_deployment () =
  (* Coded mode end to end: n=4 t=0 with the client submitting to three of
     the four replicas only — the starved replica misses every batch and
     must reconstruct content from peer fragments. The run must stay
     agreement-clean, converge, and actually exercise the decode path. *)
  let cfg =
    S.config ~dissemination:Dex_erasure.Dissemination.Coded
      ~pair:(fun _ -> freq4)
      ~n:4 ~t:0 ()
  in
  with_deployment cfg (fun d ->
      let ports = List.map snd d.S.ports in
      let starved = List.filteri (fun i _ -> i < 3) ports in
      let payload = String.make 4096 'x' in
      let c = Client.connect ~client:1 starved in
      let r =
        Client.Load.run_many ~clients:4 ~duration:1.5 c (fun i ->
            Sm.Blob (Printf.sprintf "b%d" (i mod 8), payload))
      in
      Client.close c;
      Thread.delay 0.5;
      Alcotest.(check bool) "committed work" true (r.Client.Load.committed > 20);
      let compared, violations = S.agreement_violations d in
      Alcotest.(check bool) "slots compared" true (compared > 0);
      Alcotest.(check int) "no agreement violations" 0 (List.length violations);
      let merged =
        Dex_metrics.Registry.merge
          (List.map (fun (_, s) -> Dex_metrics.Registry.snapshot (S.metrics s)) d.S.servers)
      in
      Alcotest.(check bool) "coded lane decoded batches" true
        (Dex_metrics.Registry.get merged "erasure/decodes" > 0);
      Alcotest.(check bool) "no decode failures" true
        (Dex_metrics.Registry.get merged "erasure/decode_failures" = 0);
      let deadline = Unix.gettimeofday () +. 10.0 in
      let converged () =
        match
          List.sort_uniq compare (List.map (fun (_, s) -> S.state_digest s) d.S.servers)
        with
        | [ _ ] -> true
        | _ -> false
      in
      while (not (converged ())) && Unix.gettimeofday () < deadline do
        Thread.delay 0.1
      done;
      Alcotest.(check bool) "replica states converged" true (converged ()))

let test_threads_io_mode_parity () =
  (* The reactor is the default and carries the rest of this suite; the
     legacy thread-per-connection runtime must keep the same service
     semantics, and the two runtimes must interoperate on the wire. *)
  let io_mode = Dex_runtime.Transport.Threads in
  let cfg = S.config ~io_mode ~pair:(fun _ -> freq4) ~n:4 ~t:0 () in
  with_deployment cfg (fun d ->
      let ports = List.map snd d.S.ports in
      let c = Client.connect ~io_mode ~client:1 ports in
      let r =
        Client.Load.run_many ~clients:8 ~duration:1.0 c (fun i ->
            Sm.Set (Printf.sprintf "k%d" (i mod 8), i))
      in
      Client.close c;
      (* Cross-mode: a reactor client against the threaded deployment. *)
      let c2 = Client.connect ~io_mode:Dex_runtime.Transport.Reactor ~client:99 ports in
      (match Client.submit c2 (Sm.Add ("cross", 1)) with
      | Some res -> Alcotest.(check bool) "cross-mode applied" true (res.Client.output = Sm.Count 1)
      | None -> Alcotest.fail "cross-mode submit failed");
      Client.close c2;
      Thread.delay 0.3;
      Alcotest.(check bool) "committed work" true (r.Client.Load.committed > 100);
      let compared, violations = S.agreement_violations d in
      Alcotest.(check bool) "slots compared" true (compared > 0);
      Alcotest.(check int) "no agreement violations" 0 (List.length violations);
      let digests =
        List.sort_uniq compare (List.map (fun (_, s) -> S.state_digest s) d.S.servers)
      in
      Alcotest.(check int) "replica states converged" 1 (List.length digests))

let thread_count () =
  (* Linux: one entry per live thread. *)
  Array.length (Sys.readdir "/proc/self/task")

let test_shutdown_joins_threads () =
  if not (Sys.file_exists "/proc/self/task") then ()
  else begin
    let baseline = thread_count () in
    let run io_mode =
      let cfg = S.config ~io_mode ~pair:(fun _ -> freq4) ~n:4 ~t:0 () in
      let d = S.launch cfg in
      let c = Client.connect ~io_mode ~client:1 (List.map snd d.S.ports) in
      let stop = ref false in
      let loader =
        Thread.create
          (fun () ->
            while not !stop do
              try ignore (Client.submit ~timeout:0.2 ~attempts:1 c (Sm.Add ("k", 1)))
              with _ -> Thread.delay 0.01
            done)
          ()
      in
      Thread.delay 0.4;
      (* Tear the deployment down while the loader is mid-flight. *)
      S.shutdown d;
      stop := true;
      Thread.join loader;
      Client.close c
    in
    run Dex_runtime.Transport.Threads;
    run Dex_runtime.Transport.Reactor;
    (* Every acceptor, reader, batcher, syncer and loop thread must have been
       joined: the process returns to its pre-deployment thread count. *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec settle () =
      if thread_count () <= baseline then ()
      else if Unix.gettimeofday () > deadline then
        Alcotest.failf "leaked threads: %d before the deployments, %d after" baseline
          (thread_count ())
      else begin
        Thread.delay 0.05;
        settle ()
      end
    in
    settle ()
  end

let test_config_validation () =
  Alcotest.check_raises "bad batch_cap"
    (Invalid_argument "Server.config: batch_cap must be >= 1") (fun () ->
      ignore (S.config ~batch_cap:0 ~pair:(fun _ -> freq4) ~n:4 ~t:0 ()));
  Alcotest.check_raises "bad settle" (Invalid_argument "Server.config: settle must be >= 0")
    (fun () -> ignore (S.config ~settle:(-0.1) ~pair:(fun _ -> freq4) ~n:4 ~t:0 ()));
  Alcotest.check_raises "bad commit_log_cap"
    (Invalid_argument "Server.config: commit_log_cap must be >= 1") (fun () ->
      ignore (S.config ~commit_log_cap:0 ~pair:(fun _ -> freq4) ~n:4 ~t:0 ()))

let () =
  Alcotest.run "dex_service"
    [
      ( "codecs",
        [
          Alcotest.test_case "command roundtrip" `Quick test_command_roundtrip;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
          Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
          Alcotest.test_case "smsg dissemination roundtrip" `Quick
            test_smsg_dissemination_roundtrip;
          Alcotest.test_case "smsg fragment boundary fuzz" `Quick
            test_smsg_fragment_boundary_fuzz;
        ] );
      ( "batches",
        [
          Alcotest.test_case "canonical sorts and dedupes" `Quick
            test_canonical_sorts_and_dedupes;
          Alcotest.test_case "cap keeps smallest" `Quick test_canonical_cap_keeps_smallest;
          Alcotest.test_case "digest order-insensitive" `Quick test_digest_order_insensitive;
          Alcotest.test_case "digest distinguishes" `Quick test_digest_distinguishes;
          Alcotest.test_case "empty digest reserved" `Quick test_empty_digest_reserved;
        ] );
      ( "state_machine",
        [
          Alcotest.test_case "semantics" `Quick test_state_machine_semantics;
          Alcotest.test_case "digest convergence" `Quick test_state_machine_digest_converges;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "commits, one-step, agreement" `Quick
            test_deployment_commits_one_step;
          Alcotest.test_case "session dedupe / idempotent retry" `Quick
            test_session_dedupe_idempotent_retry;
          Alcotest.test_case "equivocator tolerated" `Quick test_equivocator_deployment;
          Alcotest.test_case "commit log bounded" `Quick test_commit_log_bounded;
          Alcotest.test_case "durable restart recovers" `Quick test_durable_restart_recovers;
          Alcotest.test_case "coded dissemination, starved replica" `Quick
            test_coded_dissemination_deployment;
          Alcotest.test_case "threads io-mode parity" `Quick test_threads_io_mode_parity;
          Alcotest.test_case "shutdown joins threads" `Quick test_shutdown_joins_threads;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
