(* Tests for dex_shard: shard-map determinism/stability/coverage properties,
   the router's session-dedupe core, and live multi-group deployments over
   one shared runtime (real sockets, real threads, both io modes) — zero
   agreement violations per shard, zero misroutes, no duplicate applies. *)

open Dex_service
module Shard_map = Dex_shard.Shard_map
module Router = Dex_shard.Router
module G = Dex_shard.Group_set.Make (Dex_core.Dex.Lane (Dex_underlying.Uc_oracle))
module S = G.S
module Sm = State_machine

let req client rid = { Wire.client; rid; command = Sm.Set (Printf.sprintf "k%d" rid, rid) }

(* --------------------------- shard map --------------------------- *)

let test_map_deterministic () =
  List.iter
    (fun policy ->
      let a = Shard_map.create ~policy ~shards:4 () in
      let b = Shard_map.create ~policy ~shards:4 () in
      for client = 0 to 99 do
        for rid = 0 to 3 do
          let r = req client rid in
          Alcotest.(check int)
            "same key, same shard, across instances (a restart)"
            (Shard_map.shard_of a r) (Shard_map.shard_of b r)
        done
      done)
    [ Shard_map.By_client; Shard_map.By_digest ]

let test_map_retry_stable () =
  (* A retransmit is byte-identical; it must route to the same shard under
     either policy — the soundness condition for cross-shard dedupe. *)
  List.iter
    (fun policy ->
      let m = Shard_map.create ~policy ~shards:8 () in
      for client = 0 to 49 do
        let r1 = req client 7 and r2 = req client 7 in
        Alcotest.(check int) "retry routes identically" (Shard_map.shard_of m r1)
          (Shard_map.shard_of m r2)
      done)
    [ Shard_map.By_client; Shard_map.By_digest ]

let test_map_client_policy_pins_sessions () =
  let m = Shard_map.create ~policy:Shard_map.By_client ~shards:4 () in
  for client = 0 to 49 do
    let s0 = Shard_map.shard_of m (req client 0) in
    for rid = 1 to 9 do
      Alcotest.(check int) "whole session on one shard" s0 (Shard_map.shard_of m (req client rid))
    done;
    Alcotest.(check int) "shard_of_client agrees" s0 (Shard_map.shard_of_client m client)
  done

let test_map_covers_all_shards () =
  (* Uniform inputs must leave no shard empty, for every small shard count
     and both policies. 256 distinct keys over <= 8 shards: an empty shard
     would be a (7/8)^256 ~ 10^-15 event for a uniform hash. *)
  List.iter
    (fun policy ->
      List.iter
        (fun shards ->
          let m = Shard_map.create ~policy ~shards () in
          let hit = Array.make shards 0 in
          for client = 0 to 255 do
            let s = Shard_map.shard_of m (req client client) in
            Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
            hit.(s) <- hit.(s) + 1
          done;
          Array.iteri
            (fun i n ->
              Alcotest.(check bool) (Printf.sprintf "shard %d/%d non-empty" i shards) true (n > 0))
            hit)
        [ 1; 2; 4; 8 ])
    [ Shard_map.By_client; Shard_map.By_digest ]

let test_map_string_roundtrip () =
  List.iter
    (fun policy ->
      List.iter
        (fun shards ->
          let m = Shard_map.create ~policy ~shards () in
          match Shard_map.of_string (Shard_map.to_string m) with
          | None -> Alcotest.fail "roundtrip rejected"
          | Some m' ->
            Alcotest.(check int) "shards" (Shard_map.shards m) (Shard_map.shards m');
            Alcotest.(check bool) "policy" true (Shard_map.policy m = Shard_map.policy m');
            (* The parsed map must route identically — stability across a
               process restart that persisted the textual form. *)
            for client = 0 to 63 do
              Alcotest.(check int) "same routing" (Shard_map.shard_of m (req client 1))
                (Shard_map.shard_of m' (req client 1))
            done)
        [ 1; 3; 8 ])
    [ Shard_map.By_client; Shard_map.By_digest ];
  List.iter
    (fun bad -> Alcotest.(check bool) bad true (Shard_map.of_string bad = None))
    [ ""; "v1"; "v2:4:client"; "v1:0:client"; "v1:x:client"; "v1:4:random"; "v1:4:client:extra" ]

(* ------------------------- router dedupe ------------------------- *)

let test_dedupe_first_then_duplicates () =
  let d = Router.Dedupe.create () in
  Router.Dedupe.route d ~client:7 ~rid:0 ~shard:2;
  (* First commit from the owner counts; every replica echo after it is a
     duplicate, as is a late echo after the next rid is in flight. *)
  Alcotest.(check bool) "first" true (Router.Dedupe.settle d ~client:7 ~rid:0 ~shard:2 = `First);
  Alcotest.(check bool) "echo" true
    (Router.Dedupe.settle d ~client:7 ~rid:0 ~shard:2 = `Duplicate);
  Router.Dedupe.route d ~client:7 ~rid:1 ~shard:2;
  Alcotest.(check bool) "late echo of settled rid" true
    (Router.Dedupe.settle d ~client:7 ~rid:0 ~shard:2 = `Duplicate);
  Alcotest.(check bool) "next rid first" true
    (Router.Dedupe.settle d ~client:7 ~rid:1 ~shard:2 = `First);
  Alcotest.(check int) "duplicate count" 2 (Router.Dedupe.duplicates d);
  Alcotest.(check int) "no misroutes" 0 (Router.Dedupe.misroutes d)

let test_dedupe_flags_misroute () =
  let d = Router.Dedupe.create () in
  Router.Dedupe.route d ~client:3 ~rid:5 ~shard:1;
  Alcotest.(check bool) "foreign shard flagged" true
    (Router.Dedupe.settle d ~client:3 ~rid:5 ~shard:0 = `Misrouted);
  Alcotest.(check int) "misroute counted" 1 (Router.Dedupe.misroutes d);
  Alcotest.(check bool) "owner still settles" true
    (Router.Dedupe.settle d ~client:3 ~rid:5 ~shard:1 = `First)

let test_dedupe_independent_sessions () =
  let d = Router.Dedupe.create () in
  Router.Dedupe.route d ~client:1 ~rid:0 ~shard:0;
  Router.Dedupe.route d ~client:2 ~rid:0 ~shard:3;
  Alcotest.(check bool) "client 1" true (Router.Dedupe.settle d ~client:1 ~rid:0 ~shard:0 = `First);
  Alcotest.(check bool) "client 2 unaffected" true
    (Router.Dedupe.settle d ~client:2 ~rid:0 ~shard:3 = `First);
  Alcotest.(check int) "no duplicates" 0 (Router.Dedupe.duplicates d)

(* ----------------------- live deployments ------------------------ *)

let freq4 = Dex_condition.Pair.freq ~n:4 ~t:0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_group_set ?chaos ~map cfg f =
  let g = G.launch ?chaos ~map cfg in
  Fun.protect ~finally:(fun () -> G.shutdown g) (fun () -> f g)

let check_shards_clean g =
  Array.iteri
    (fun i (compared, violations) ->
      Alcotest.(check bool) (Printf.sprintf "shard %d slots compared" i) true (compared > 0);
      Alcotest.(check int)
        (Printf.sprintf "shard %d no agreement violations" i)
        0 (List.length violations);
      let digests =
        List.sort_uniq compare
          (List.map (fun (_, s) -> S.state_digest s) (G.deployment g i).S.servers)
      in
      Alcotest.(check int) (Printf.sprintf "shard %d states converged" i) 1 (List.length digests))
    (G.agreement_violations g)

(* Two groups behind one shared mesh, a router spreading 16 logical clients
   by client id: both shards must take work, commit with clean per-shard
   agreement, count every request exactly once (no duplicate applies), and
   the dedupe core must see zero misroutes. *)
let run_two_shard_deployment io_mode =
  let map = Shard_map.create ~shards:2 () in
  let cfg = S.config ~io_mode ~pair:(fun _ -> freq4) ~n:4 ~t:0 () in
  with_group_set ~map cfg (fun g ->
      let ports = Array.to_list (G.ports g) in
      let r = Router.connect ~io_mode ~map ~client:1 ports in
      let report =
        Router.Load.run_many ~clients:16 ~duration:1.0 r (fun _ -> Sm.Add ("k", 1))
      in
      Router.close r;
      Thread.delay 0.3;
      Alcotest.(check bool) "committed work" true (report.Router.Load.agg.Client.Load.committed > 100);
      Alcotest.(check int) "zero misroutes" 0 report.Router.Load.misroutes;
      Array.iteri
        (fun i (s : Router.Load.shard_stat) ->
          Alcotest.(check bool) (Printf.sprintf "shard %d took work" i) true (s.s_committed > 0))
        report.Router.Load.per_shard;
      check_shards_clean g;
      (* No duplicate applies: the counter each shard's replicas agree on
         sums, across shards, to the number of distinct requests the shards
         admitted — between what the router saw committed (stragglers may
         land after the load window) and what it issued. *)
      let applied =
        Array.to_list (G.ports g) |> List.length |> fun k ->
        List.init k (fun i ->
            match (G.deployment g i).S.servers with
            | (_, s) :: _ -> (
              match List.assoc_opt "k" (S.state_snapshot s) with Some v -> v | None -> 0)
            | [] -> 0)
        |> List.fold_left ( + ) 0
      in
      let committed = report.Router.Load.agg.Client.Load.committed in
      let issued = report.Router.Load.agg.Client.Load.issued in
      Alcotest.(check bool)
        (Printf.sprintf "applies %d within [committed %d, issued %d]" applied committed issued)
        true
        (applied >= committed && applied <= issued))

let test_two_shards_reactor () = run_two_shard_deployment Dex_runtime.Transport.Reactor

let test_two_shards_threads () = run_two_shard_deployment Dex_runtime.Transport.Threads

let test_shard_data_dirs_and_restart () =
  (* Per-shard WAL roots: shard i persists under <data_dir>/shard-<i>, and a
     replica killed and restarted inside one shard recovers there while the
     other shard keeps its own files. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dex-shard-test-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let map = Shard_map.create ~shards:2 () in
  let cfg =
    S.config ~data_dir:dir ~catchup_grace:2.0 ~pair:(fun _ -> freq4) ~n:4 ~t:0 ()
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_group_set ~map cfg (fun g ->
      let ports = Array.to_list (G.ports g) in
      let r = Router.connect ~map ~client:1 ports in
      ignore (Router.Load.run_many ~clients:8 ~duration:0.6 r (fun _ -> Sm.Add ("k", 1)));
      Array.iteri
        (fun i _ ->
          let root = Filename.concat dir (Printf.sprintf "shard-%d" i) in
          Alcotest.(check bool)
            (Printf.sprintf "shard %d data root exists" i)
            true
            (Sys.file_exists (Filename.concat root "replica-0")))
        (G.ports g);
      G.kill_replica g ~shard:0 0;
      ignore (G.restart_replica g ~shard:0 0);
      let report = Router.Load.run_many ~clients:8 ~duration:0.8 r (fun _ -> Sm.Add ("k", 1)) in
      Router.close r;
      Thread.delay 0.5;
      Alcotest.(check bool) "committed after restart" true
        (report.Router.Load.agg.Client.Load.committed > 0);
      Alcotest.(check int) "zero misroutes" 0 report.Router.Load.misroutes;
      check_shards_clean g)

let () =
  Alcotest.run "dex_shard"
    [
      ( "shard_map",
        [
          Alcotest.test_case "deterministic across instances" `Quick test_map_deterministic;
          Alcotest.test_case "retry routes identically" `Quick test_map_retry_stable;
          Alcotest.test_case "client policy pins sessions" `Quick
            test_map_client_policy_pins_sessions;
          Alcotest.test_case "all shards covered" `Quick test_map_covers_all_shards;
          Alcotest.test_case "to_string/of_string roundtrip" `Quick test_map_string_roundtrip;
        ] );
      ( "dedupe",
        [
          Alcotest.test_case "first then duplicates" `Quick test_dedupe_first_then_duplicates;
          Alcotest.test_case "misroute flagged" `Quick test_dedupe_flags_misroute;
          Alcotest.test_case "independent sessions" `Quick test_dedupe_independent_sessions;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "two shards, reactor io" `Quick test_two_shards_reactor;
          Alcotest.test_case "two shards, threads io" `Quick test_two_shards_threads;
          Alcotest.test_case "per-shard data dirs, restart" `Quick
            test_shard_data_dirs_and_restart;
        ] );
    ]
