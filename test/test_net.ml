(* Tests for dex_net: runner semantics (depth accounting, determinism,
   message counting), disciplines, and the generic adversary wrappers.

   The test protocol is a tiny "flood" consensus: every process broadcasts
   its value, and upon having received values from all n processes decides
   the largest one. It exercises broadcast, self-delivery, depth accounting
   and decision plumbing without any Byzantine subtleties. *)

open Dex_net

type msg = Val of int

let flood ~n ~me ~value =
  let seen = Array.make n None in
  let decided = ref false in
  let try_decide () =
    if (not !decided) && Array.for_all Option.is_some seen then begin
      decided := true;
      let best = Array.fold_left (fun acc v -> max acc (Option.get v)) min_int seen in
      [ Protocol.decide ~tag:"flood" best ]
    end
    else []
  in
  {
    Protocol.start =
      (fun () ->
        seen.(me) <- Some value;
        Protocol.broadcast ~n (Val value) @ try_decide ());
    on_message =
      (fun ~now:_ ~from (Val v) ->
        if from >= 0 && from < n && seen.(from) = None then begin
          seen.(from) <- Some v;
          try_decide ()
        end
        else []);
  }

let run_flood ?(n = 5) ?(discipline = Discipline.lockstep) ?(seed = 1) ?(faulty = []) () =
  let make_instance p =
    if List.mem p faulty then Adversary.silent () else flood ~n ~me:p ~value:(p * 10)
  in
  Runner.run (Runner.config ~discipline ~seed ~classify:(fun (Val _) -> "VAL") ~n make_instance)

let test_all_decide () =
  let r = run_flood () in
  Alcotest.(check bool) "all decided" true (Runner.all_decided r);
  Alcotest.(check (list int)) "agreed on max" [ 40 ] (Runner.decided_values r);
  Alcotest.(check bool) "agreement" true (Runner.agreement r)

let test_depth_accounting () =
  (* Every decision consumes a direct broadcast: depth 1. *)
  let r = run_flood () in
  Array.iter
    (function
      | Some d ->
        Alcotest.(check int) "one-step depth" 1 d.Runner.depth;
        Alcotest.(check string) "tag" "flood" d.Runner.tag
      | None -> Alcotest.fail "undecided")
    r.Runner.decisions

let test_lockstep_time_equals_steps () =
  let r = run_flood () in
  Array.iter
    (function
      | Some d -> Alcotest.(check (float 1e-9)) "time = depth" 1.0 d.Runner.time
      | None -> Alcotest.fail "undecided")
    r.Runner.decisions

let test_message_counts () =
  let n = 5 in
  let r = run_flood ~n () in
  (* Each process broadcasts once to n targets. *)
  Alcotest.(check int) "sent" (n * n) r.Runner.sent;
  Alcotest.(check int) "delivered" (n * n) r.Runner.delivered;
  Alcotest.(check (list (pair string int))) "classified" [ ("VAL", n * n) ] r.Runner.sent_by_class

let test_determinism () =
  let r1 = run_flood ~discipline:Discipline.asynchronous ~seed:7 () in
  let r2 = run_flood ~discipline:Discipline.asynchronous ~seed:7 () in
  Alcotest.(check (float 1e-12)) "same final time" r1.Runner.final_time r2.Runner.final_time;
  Alcotest.(check int) "same sent" r1.Runner.sent r2.Runner.sent

let test_seed_changes_schedule () =
  let r1 = run_flood ~discipline:Discipline.asynchronous ~seed:7 () in
  let r2 = run_flood ~discipline:Discipline.asynchronous ~seed:8 () in
  (* Final decision is schedule-independent for flood; the schedule itself
     (final time) almost surely differs. *)
  Alcotest.(check bool) "different times" true
    (r1.Runner.final_time <> r2.Runner.final_time)

let run_flood_policy ~policy ~seed () =
  Runner.run
    (Runner.config ~discipline:Discipline.lockstep ~seed ~policy ~n:5 (fun p ->
         flood ~n:5 ~me:p ~value:(p * 10)))

let test_random_tiebreak_decides () =
  (* Random same-instant ordering samples interleavings the FIFO tiebreak
     collapses, but flood's outcome is schedule-independent: every seed
     still delivers everything and decides the max. *)
  List.iter
    (fun seed ->
      let r = run_flood_policy ~policy:Runner.Random_tiebreak ~seed () in
      Alcotest.(check bool) "all decided" true (Runner.all_decided r);
      Alcotest.(check (list int)) "agreed on max" [ 40 ] (Runner.decided_values r);
      Alcotest.(check int) "all delivered" r.Runner.sent r.Runner.delivered)
    [ 1; 2; 3; 4; 5 ]

let test_random_tiebreak_deterministic_per_seed () =
  let times policy seed =
    let r = run_flood_policy ~policy ~seed () in
    Array.map (Option.map (fun d -> d.Runner.time)) r.Runner.decisions
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (times Runner.Random_tiebreak 9 = times Runner.Random_tiebreak 9)

let test_silent_process_blocks_full_flood () =
  (* flood waits for all n values, so one silent process stalls everyone:
     the run ends quiescent with nobody decided. *)
  let r = run_flood ~faulty:[ 2 ] () in
  Alcotest.(check bool) "not all decided" false (Runner.all_decided r);
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent)

let test_crash_after_actions () =
  (* A process that crashes after 3 sends reaches only 3 peers. *)
  let n = 5 in
  let make p =
    if p = 0 then Adversary.crash_after_actions 3 (flood ~n ~me:0 ~value:0)
    else flood ~n ~me:p ~value:(p * 10)
  in
  let r = Runner.run (Runner.config ~n make) in
  (* Processes 3 and 4 never hear p0, so they cannot decide. *)
  Alcotest.(check bool) "p3 undecided" true (r.Runner.decisions.(3) = None);
  Alcotest.(check bool) "p4 undecided" true (r.Runner.decisions.(4) = None)

let test_mute_towards () =
  let n = 5 in
  let make p =
    if p = 0 then Adversary.mute_towards [ 4 ] (flood ~n ~me:0 ~value:0)
    else flood ~n ~me:p ~value:(p * 10)
  in
  let r = Runner.run (Runner.config ~n make) in
  Alcotest.(check bool) "victim undecided" true (r.Runner.decisions.(4) = None);
  Alcotest.(check bool) "others decided" true
    (List.for_all (fun p -> r.Runner.decisions.(p) <> None) [ 0; 1; 2; 3 ])

let test_replayer_is_harmless () =
  let n = 5 in
  let make p =
    if p = 0 then Adversary.replayer ~copies:3 (flood ~n ~me:0 ~value:0)
    else flood ~n ~me:p ~value:(p * 10)
  in
  let r = Runner.run (Runner.config ~n make) in
  Alcotest.(check bool) "all decided" true (Runner.all_decided r);
  Alcotest.(check bool) "agreement" true (Runner.agreement r)

let test_extra_node_receives () =
  (* An extra node at pid n echoes the count of messages it saw; protocols
     can address it explicitly. *)
  let n = 3 in
  let hits = ref 0 in
  let extra_inst =
    {
      Protocol.start = (fun () -> []);
      on_message = (fun ~now:_ ~from:_ (Val _) -> incr hits; []);
    }
  in
  let make p =
    {
      Protocol.start = (fun () -> [ Protocol.send n (Val p) ]);
      on_message = (fun ~now:_ ~from:_ _ -> []);
    }
  in
  let r = Runner.run (Runner.config ~n ~extra:[ (n, extra_inst) ] make) in
  Alcotest.(check int) "extra node saw all" 3 !hits;
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent)

let test_sends_to_unknown_pid_dropped () =
  let n = 2 in
  let make _ =
    {
      Protocol.start = (fun () -> [ Protocol.send 99 (Val 1) ]);
      on_message = (fun ~now:_ ~from:_ _ -> []);
    }
  in
  let r = Runner.run (Runner.config ~n make) in
  Alcotest.(check int) "nothing sent" 0 r.Runner.sent;
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent)

let test_trace_recording () =
  let r =
    Runner.run
      (Runner.config ~trace:true ~pp_msg:(fun ppf (Val v) -> Format.fprintf ppf "Val %d" v)
         ~n:3 (fun p -> flood ~n:3 ~me:p ~value:p))
  in
  Alcotest.(check bool) "has deliveries" true
    (Dex_sim.Trace.find r.Runner.trace ~sub:"deliver" <> []);
  Alcotest.(check bool) "has decisions" true
    (Dex_sim.Trace.find r.Runner.trace ~sub:"decide" <> [])

let test_skew_discipline () =
  let d = Discipline.skew ~slow:[ 0 ] ~factor:100.0 Discipline.lockstep in
  let rng = Dex_stdext.Prng.create ~seed:0 in
  Alcotest.(check (float 1e-9)) "slow source" 100.0 (d.Discipline.latency rng ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "normal source" 1.0 (d.Discipline.latency rng ~src:1 ~dst:0)

let test_delay_into_discipline () =
  let d = Discipline.delay_into ~dst:[ 2 ] ~extra:5.0 Discipline.lockstep in
  let rng = Dex_stdext.Prng.create ~seed:0 in
  Alcotest.(check (float 1e-9)) "victim dst" 6.0 (d.Discipline.latency rng ~src:0 ~dst:2);
  Alcotest.(check (float 1e-9)) "other dst" 1.0 (d.Discipline.latency rng ~src:0 ~dst:1)

let () =
  Alcotest.run "dex_net"
    [
      ( "runner",
        [
          Alcotest.test_case "all decide" `Quick test_all_decide;
          Alcotest.test_case "depth accounting" `Quick test_depth_accounting;
          Alcotest.test_case "lockstep time = steps" `Quick test_lockstep_time_equals_steps;
          Alcotest.test_case "message counts" `Quick test_message_counts;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
          Alcotest.test_case "extra node" `Quick test_extra_node_receives;
          Alcotest.test_case "unknown pid dropped" `Quick test_sends_to_unknown_pid_dropped;
          Alcotest.test_case "trace recording" `Quick test_trace_recording;
          Alcotest.test_case "random tiebreak decides" `Quick test_random_tiebreak_decides;
          Alcotest.test_case "random tiebreak deterministic" `Quick
            test_random_tiebreak_deterministic_per_seed;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "silent blocks flood" `Quick test_silent_process_blocks_full_flood;
          Alcotest.test_case "crash after actions" `Quick test_crash_after_actions;
          Alcotest.test_case "mute towards" `Quick test_mute_towards;
          Alcotest.test_case "replayer harmless" `Quick test_replayer_is_harmless;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "skew" `Quick test_skew_discipline;
          Alcotest.test_case "delay into" `Quick test_delay_into_discipline;
        ] );
    ]
