(* Tests for dex_codec and the per-protocol wire codecs: roundtrip unit
   tests, qcheck roundtrip properties, hostile-input rejection, frame
   behaviour, and a full DEX cluster over the codec-framed TCP transport. *)

open Dex_codec
open Dex_broadcast
open Dex_underlying

let roundtrip codec v = Codec.decode_exn codec (Codec.encode codec v)

let check_rt name codec pp v =
  Alcotest.check (Alcotest.testable pp ( = )) name v (roundtrip codec v)

(* ------------------------- primitives ------------------------- *)

let test_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (roundtrip Codec.int n))
    [ 0; 1; -1; 63; 64; -64; -65; 1000; -1000; max_int; min_int; 0x7FFFFFFF ]

let test_int_compact () =
  Alcotest.(check int) "small ints are 1 byte" 1 (String.length (Codec.encode Codec.int 5));
  Alcotest.(check int) "small negatives too" 1 (String.length (Codec.encode Codec.int (-5)))

let test_bool_roundtrip () =
  Alcotest.(check bool) "true" true (roundtrip Codec.bool true);
  Alcotest.(check bool) "false" false (roundtrip Codec.bool false)

let test_float_roundtrip () =
  List.iter
    (fun x -> Alcotest.(check (float 0.0)) (string_of_float x) x (roundtrip Codec.float x))
    [ 0.0; 1.5; -3.25; 1e300; -1e-300; infinity; neg_infinity ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (roundtrip Codec.string s))
    [ ""; "x"; "hello world"; String.make 10_000 'z'; "\x00\xff\x80 binary" ]

let test_option_list_pair () =
  let c = Codec.(list (pair (option int) string)) in
  let v = [ (Some 5, "a"); (None, ""); (Some (-9), "bc") ] in
  Alcotest.(check (list (pair (option int) string))) "nested" v (roundtrip c v)

let test_triple () =
  let c = Codec.(triple int bool string) in
  let v = (42, true, "x") in
  let got = roundtrip c v in
  Alcotest.(check bool) "triple" true (v = got)

(* ------------------------- hostile input ------------------------- *)

let decodes_err codec s =
  match Codec.decode codec s with Ok _ -> false | Error _ -> true

let test_truncated_rejected () =
  let encoded = Codec.encode Codec.string "hello" in
  let truncated = String.sub encoded 0 (String.length encoded - 1) in
  Alcotest.(check bool) "truncated string" true (decodes_err Codec.string truncated)

let test_trailing_rejected () =
  let encoded = Codec.encode Codec.int 5 ^ "extra" in
  Alcotest.(check bool) "trailing bytes" true (decodes_err Codec.int encoded)

let test_bad_bool_rejected () =
  Alcotest.(check bool) "bool byte 7" true (decodes_err Codec.bool "\x07")

let test_bad_option_tag_rejected () =
  Alcotest.(check bool) "option tag 9" true (decodes_err Codec.(option int) "\x09")

let test_huge_length_rejected () =
  (* A string claiming a 2^40 length must be rejected, not allocated. *)
  let buf = Buffer.create 16 in
  Codec.int.Codec.write buf (1 lsl 40);
  Alcotest.(check bool) "huge string length" true
    (decodes_err Codec.string (Buffer.contents buf))

let test_unknown_variant_tag_rejected () =
  let bad = Codec.encode Codec.int 99 in
  Alcotest.(check bool) "tag 99" true (decodes_err (Idb.codec Codec.int) bad)

let test_empty_input_rejected () =
  Alcotest.(check bool) "empty" true (decodes_err Codec.int "")

(* ------------------------- protocol codecs ------------------------- *)

module D = Dex_core.Dex.Make (Uc_oracle)
module Dl = Dex_core.Dex.Make (Uc_leader)
module Dmv = Dex_core.Dex.Make (Multivalued)
module B = Dex_baselines.Bosco.Make (Uc_oracle)
module K = Dex_baselines.Kuo_chen.Make (Uc_oracle)
module H = Dex_baselines.Hbft.Make (Uc_oracle)

let test_idb_codec () =
  let c = Idb.codec Codec.int in
  check_rt "init" c
    (fun ppf _ -> Format.fprintf ppf "msg")
    (Idb.Init 42);
  check_rt "echo" c (fun ppf _ -> Format.fprintf ppf "msg") (Idb.Echo { origin = 3; payload = -7 })

let test_bracha_codec () =
  let c = Bracha.codec Codec.int in
  List.iter
    (check_rt "bracha" c (fun ppf _ -> Format.fprintf ppf "msg"))
    [ Bracha.Initial 5; Bracha.Echo { origin = 0; payload = 1 }; Bracha.Ready { origin = 6; payload = -2 } ]

let test_mmr_codec () =
  List.iter
    (check_rt "mmr" Mmr.codec (fun ppf m -> Mmr.pp_msg ppf m))
    [ Mmr.Est (3, Bv.Bval Bv.One); Mmr.Aux (1, Bv.Zero); Mmr.Done Bv.One ]

let test_uc_leader_codec () =
  List.iter
    (check_rt "leader" Uc_leader.codec Uc_leader.pp_msg)
    [
      Uc_leader.Est 9;
      Uc_leader.Proposal (4, 7);
      Uc_leader.Prevote (2, Some 5);
      Uc_leader.Prevote (2, None);
      Uc_leader.Precommit (0, Some 1);
      Uc_leader.Wake (3, `Prevote);
      Uc_leader.Val (Bracha.rb_send 11);
    ]

let test_dex_codec () =
  List.iter
    (check_rt "dex" D.codec D.pp_msg)
    [
      D.Prop 5;
      D.Idb (Idb.Init 9);
      D.Idb (Idb.Echo { origin = 2; payload = 3 });
      D.Uc (Uc_oracle.Propose 4);
      D.Uc (Uc_oracle.Decision 8);
    ]

let test_dex_mv_codec () =
  List.iter
    (check_rt "dex-mv" Dmv.codec Dmv.pp_msg)
    [
      Dmv.Prop 5;
      Dmv.Uc (Multivalued.Val (Bracha.rb_send 3));
      Dmv.Uc (Multivalued.Bin (Mmr.Done Bv.Zero));
    ]

let test_bosco_codec () =
  List.iter
    (check_rt "bosco" B.codec B.pp_msg)
    [ B.Vote 5; B.Uc (Uc_oracle.Propose 1) ]

let test_kuo_chen_codec () =
  List.iter
    (check_rt "kuo-chen" K.codec K.pp_msg)
    [
      K.V1 5;
      K.V1 (-3);
      K.V2 0;
      K.V2 max_int;
      K.Uc (Uc_oracle.Propose 4);
      K.Uc (Uc_oracle.Decision 8);
    ]

let test_hbft_codec () =
  List.iter
    (check_rt "hbft" H.codec H.pp_msg)
    [
      H.Val 7;
      H.Val min_int;
      H.Order 1;
      H.Accept (-9);
      H.Timeout;
      H.Uc (Uc_oracle.Propose 0);
      H.Uc (Uc_oracle.Decision 2);
    ]

(* Property: random DEX-leader messages roundtrip. *)
let gen_leader_msg =
  QCheck.Gen.(
    let value = int_range (-100) 100 in
    let vote = opt value in
    oneof
      [
        map (fun v -> Uc_leader.Est v) value;
        map2 (fun r v -> Uc_leader.Proposal (r, v)) (int_bound 50) value;
        map2 (fun r v -> Uc_leader.Prevote (r, v)) (int_bound 50) vote;
        map2 (fun r v -> Uc_leader.Precommit (r, v)) (int_bound 50) vote;
        map
          (fun v -> Uc_leader.Val (Bracha.Initial v))
          value;
        map2
          (fun o v -> Uc_leader.Val (Bracha.Echo { origin = o; payload = v }))
          (int_bound 20) value;
      ])

let gen_kuo_chen_msg =
  QCheck.Gen.(
    let value = int_range (-1000) 1000 in
    oneof
      [
        map (fun v -> K.V1 v) value;
        map (fun v -> K.V2 v) value;
        map (fun v -> K.Uc (Uc_oracle.Propose v)) value;
        map (fun v -> K.Uc (Uc_oracle.Decision v)) value;
      ])

let gen_hbft_msg =
  QCheck.Gen.(
    let value = int_range (-1000) 1000 in
    oneof
      [
        map (fun v -> H.Val v) value;
        map (fun v -> H.Order v) value;
        map (fun v -> H.Accept v) value;
        return H.Timeout;
        map (fun v -> H.Uc (Uc_oracle.Propose v)) value;
        map (fun v -> H.Uc (Uc_oracle.Decision v)) value;
      ])

let prop_kuo_chen_roundtrip =
  QCheck.Test.make ~name:"Kuo-Chen codec roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" K.pp_msg) gen_kuo_chen_msg)
    (fun m -> roundtrip K.codec m = m)

let prop_hbft_roundtrip =
  QCheck.Test.make ~name:"hBFT codec roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" H.pp_msg) gen_hbft_msg)
    (fun m -> roundtrip H.codec m = m)

let prop_leader_roundtrip =
  QCheck.Test.make ~name:"Uc_leader codec roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Uc_leader.pp_msg) gen_leader_msg)
    (fun m -> roundtrip Uc_leader.codec m = m)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int codec roundtrip" ~count:1000 QCheck.int (fun n ->
      roundtrip Codec.int n = n)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string codec roundtrip" ~count:500 QCheck.string (fun s ->
      roundtrip Codec.string s = s)

(* ------------------------- actions ------------------------- *)

(* Protocol.action round-trips, over both a real protocol message type and
   a view-shaped payload ((V ∪ {⊥})^n as a list), hitting the boundary
   cases transports never produce but replay files may: empty views,
   all-⊥ views, empty and huge tags, extreme values and delays. *)

open Dex_net

let action_testable pp_msg =
  let pp ppf = function
    | Protocol.Send (dst, m) -> Format.fprintf ppf "Send(%d, %a)" dst pp_msg m
    | Protocol.Decide { value; tag } -> Format.fprintf ppf "Decide(%d, %S)" value tag
    | Protocol.Set_timer { delay; msg } ->
      Format.fprintf ppf "Set_timer(%g, %a)" delay pp_msg msg
  in
  Alcotest.testable pp ( = )

let test_action_codec_boundaries () =
  let view_c = Codec.(list (option int)) in
  let c = Protocol.action_codec view_c in
  let pp_view ppf v = Format.fprintf ppf "view[%d]" (List.length v) in
  List.iter
    (fun a -> Alcotest.check (action_testable pp_view) "action" a (roundtrip c a))
    [
      Protocol.Send (0, []);                                   (* empty view *)
      Protocol.Send (6, [ None; None; None ]);                 (* all-⊥ view *)
      Protocol.Send (max_int, List.init 1000 (fun i -> Some i));
      Protocol.Decide { value = min_int; tag = "" };
      Protocol.Decide { value = max_int; tag = String.make 10_000 't' };
      Protocol.Set_timer { delay = 0.0; msg = [] };
      Protocol.Set_timer { delay = infinity; msg = [ Some 0; None ] };
    ];
  (* And over the DEX message type used on the wire. *)
  let cd = Protocol.action_codec D.codec in
  List.iter
    (fun a -> Alcotest.check (action_testable D.pp_msg) "dex action" a (roundtrip cd a))
    [
      Protocol.Send (3, D.Prop 17);
      Protocol.Send (0, D.Idb (Idb.Echo { origin = 2; payload = -5 }));
      Protocol.decide ~tag:"one-step" 4;
      Protocol.Set_timer { delay = 2.5; msg = D.Uc (Uc_oracle.Propose 1) };
    ]

let gen_action =
  QCheck.Gen.(
    oneof
      [
        map2 (fun d m -> Protocol.Send (d, m)) (int_bound 100) gen_leader_msg;
        map2
          (fun value tag -> Protocol.Decide { value; tag })
          (int_range (-1000) 1000) string;
        map2
          (fun delay m -> Protocol.Set_timer { delay = abs_float delay; msg = m })
          pfloat gen_leader_msg;
      ])

let prop_action_roundtrip =
  let c = Protocol.action_codec Uc_leader.codec in
  QCheck.Test.make ~name:"Protocol.action codec roundtrip" ~count:500
    (QCheck.make gen_action)
    (fun a -> roundtrip c a = a)

let prop_action_decode_never_crashes =
  let c = Protocol.action_codec Uc_leader.codec in
  QCheck.Test.make ~name:"random bytes never crash the action decoder" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun bytes -> match Codec.decode c bytes with Ok _ | Error _ -> true)

(* ------------------------- frames ------------------------- *)

let test_frame_roundtrip_via_pipe () =
  let read_fd, write_fd = Unix.pipe () in
  let oc = Unix.out_channel_of_descr write_fd in
  let ic = Unix.in_channel_of_descr read_fd in
  let c = Codec.(pair int string) in
  Codec.Frame.to_channel oc c (7, "payload");
  Codec.Frame.to_channel oc c (-3, "");
  Alcotest.(check (pair int string)) "first frame" (7, "payload") (Codec.Frame.from_channel ic c);
  Alcotest.(check (pair int string)) "second frame" (-3, "") (Codec.Frame.from_channel ic c);
  close_out oc;
  (match Codec.Frame.from_channel ic c with
  | exception End_of_file -> ()
  | _ -> Alcotest.fail "expected EOF");
  close_in ic

let test_frame_to_string_matches_channel () =
  (* Frame.to_string is the event-driven send unit; it must be byte-identical
     to what the blocking writer puts on the wire. *)
  let c = Codec.(pair int string) in
  let v = (42, "framed") in
  let buf = Buffer.create 32 in
  Codec.Frame.write buf c v;
  Alcotest.(check string) "same bytes" (Buffer.contents buf) (Codec.Frame.to_string c v)

let test_frame_reader_incremental () =
  let c = Codec.string in
  let r = Codec.Frame.Reader.create c in
  let feed_str r s =
    let b = Bytes.of_string s in
    Codec.Frame.Reader.feed r b (Bytes.length b)
  in
  let f1 = Codec.Frame.to_string c "alpha" and f2 = Codec.Frame.to_string c "" in
  (* Split mid-length-prefix and mid-payload. *)
  let whole = f1 ^ f2 in
  Alcotest.(check (list string)) "nothing on 2 bytes" []
    (feed_str r (String.sub whole 0 2));
  Alcotest.(check int) "pending tracks buffered bytes" 2 (Codec.Frame.Reader.pending r);
  Alcotest.(check (list string)) "nothing mid-payload" []
    (feed_str r (String.sub whole 2 4));
  let rest = String.sub whole 6 (String.length whole - 6) in
  Alcotest.(check (list string)) "both frames complete, in order" [ "alpha"; "" ]
    (feed_str r rest);
  Alcotest.(check int) "drained" 0 (Codec.Frame.Reader.pending r);
  (* Many frames in one feed. *)
  let burst = String.concat "" (List.init 5 (fun i -> Codec.Frame.to_string c (string_of_int i))) in
  Alcotest.(check (list string)) "burst decodes whole"
    [ "0"; "1"; "2"; "3"; "4" ] (feed_str r burst)

let test_frame_reader_rejects_huge_length () =
  let c = Codec.string in
  let r = Codec.Frame.Reader.create c in
  (* A length prefix past the 64 MiB cap must fail as soon as the header is
     complete — the stream is unrecoverable, so the caller tears down. *)
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 0x7fff_ffffl;
  (match Codec.Frame.Reader.feed r b 4 with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "oversized frame accepted")

(* ------------------------- codec TCP cluster ------------------------- *)

let test_dex_over_codec_tcp () =
  let open Dex_condition in
  let open Dex_net in
  let open Dex_runtime in
  let pair = Pair.freq ~n:7 ~t:1 in
  let cfg = D.config ~pair () in
  let extra = D.extra cfg in
  let pids = Pid.all ~n:7 @ List.map fst extra in
  let transport = Transport.Tcp_codec.create ~codec:D.codec ~pids () in
  let cluster =
    Cluster.create ~transport ~n:7 ~extra (fun p -> D.instance cfg ~me:p ~proposal:6)
  in
  Cluster.start cluster;
  let ok = Cluster.await ~timeout:20.0 cluster in
  let decisions = Cluster.decisions cluster in
  Cluster.shutdown cluster;
  Alcotest.(check bool) "all decided" true ok;
  Array.iter
    (function
      | Some d ->
        Alcotest.(check int) "value" 6 d.Cluster.value;
        Alcotest.(check string) "one-step" "one-step" d.Cluster.tag
      | None -> Alcotest.fail "missing decision")
    decisions

(* Fuzz: decoding arbitrary bytes must never raise anything other than
   Decode_error (wrapped as Error by [decode]) — no crashes, no unbounded
   allocation. *)
let prop_decode_never_crashes =
  QCheck.Test.make ~name:"random bytes never crash the decoder" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun bytes ->
      let try_codec : type a. a Codec.t -> bool =
       fun c -> match Codec.decode c bytes with Ok _ | Error _ -> true
      in
      try_codec Codec.int && try_codec Codec.string
      && try_codec Codec.(list (pair int bool))
      && try_codec (Idb.codec Codec.int)
      && try_codec Uc_leader.codec
      && try_codec D.codec && try_codec K.codec && try_codec H.codec)

(* Mutation fuzz: flip one byte of a valid encoding; decode must yield
   either an error or some well-formed value — never an exception escape. *)
let mutate_one_byte (type a) (c : a Codec.t) m pos byte =
  let encoded = Bytes.of_string (Codec.encode c m) in
  if Bytes.length encoded = 0 then true
  else begin
    Bytes.set encoded (pos mod Bytes.length encoded) (Char.chr byte);
    match Codec.decode c (Bytes.to_string encoded) with Ok _ | Error _ -> true
  end

let prop_mutated_encoding_safe =
  QCheck.Test.make ~name:"mutated encodings decode safely" ~count:1000
    QCheck.(pair (QCheck.make gen_leader_msg) (pair small_nat (int_bound 255)))
    (fun (m, (pos, byte)) -> mutate_one_byte Uc_leader.codec m pos byte)

let prop_kuo_chen_mutated_safe =
  QCheck.Test.make ~name:"mutated Kuo-Chen encodings decode safely" ~count:1000
    QCheck.(pair (QCheck.make gen_kuo_chen_msg) (pair small_nat (int_bound 255)))
    (fun (m, (pos, byte)) -> mutate_one_byte K.codec m pos byte)

let prop_hbft_mutated_safe =
  QCheck.Test.make ~name:"mutated hBFT encodings decode safely" ~count:1000
    QCheck.(pair (QCheck.make gen_hbft_msg) (pair small_nat (int_bound 255)))
    (fun (m, (pos, byte)) -> mutate_one_byte H.codec m pos byte)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_int_roundtrip;
      prop_string_roundtrip;
      prop_leader_roundtrip;
      prop_kuo_chen_roundtrip;
      prop_hbft_roundtrip;
      prop_decode_never_crashes;
      prop_mutated_encoding_safe;
      prop_kuo_chen_mutated_safe;
      prop_hbft_mutated_safe;
      prop_action_roundtrip;
      prop_action_decode_never_crashes;
    ]

let () =
  Alcotest.run "dex_codec"
    [
      ( "primitives",
        [
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
          Alcotest.test_case "int compactness" `Quick test_int_compact;
          Alcotest.test_case "bool roundtrip" `Quick test_bool_roundtrip;
          Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "option/list/pair" `Quick test_option_list_pair;
          Alcotest.test_case "triple" `Quick test_triple;
        ] );
      ( "hostile-input",
        [
          Alcotest.test_case "truncated" `Quick test_truncated_rejected;
          Alcotest.test_case "trailing" `Quick test_trailing_rejected;
          Alcotest.test_case "bad bool" `Quick test_bad_bool_rejected;
          Alcotest.test_case "bad option tag" `Quick test_bad_option_tag_rejected;
          Alcotest.test_case "huge length" `Quick test_huge_length_rejected;
          Alcotest.test_case "unknown variant tag" `Quick test_unknown_variant_tag_rejected;
          Alcotest.test_case "empty input" `Quick test_empty_input_rejected;
        ] );
      ( "protocol-codecs",
        [
          Alcotest.test_case "idb" `Quick test_idb_codec;
          Alcotest.test_case "bracha" `Quick test_bracha_codec;
          Alcotest.test_case "mmr" `Quick test_mmr_codec;
          Alcotest.test_case "uc-leader" `Quick test_uc_leader_codec;
          Alcotest.test_case "dex(oracle)" `Quick test_dex_codec;
          Alcotest.test_case "dex(multivalued)" `Quick test_dex_mv_codec;
          Alcotest.test_case "bosco" `Quick test_bosco_codec;
          Alcotest.test_case "kuo-chen" `Quick test_kuo_chen_codec;
          Alcotest.test_case "hbft" `Quick test_hbft_codec;
          Alcotest.test_case "actions incl. boundaries" `Quick test_action_codec_boundaries;
        ] );
      ( "frames",
        [
          Alcotest.test_case "pipe roundtrip" `Quick test_frame_roundtrip_via_pipe;
          Alcotest.test_case "to_string = channel bytes" `Quick
            test_frame_to_string_matches_channel;
          Alcotest.test_case "incremental reader" `Quick test_frame_reader_incremental;
          Alcotest.test_case "reader rejects huge length" `Quick
            test_frame_reader_rejects_huge_length;
        ] );
      ( "cluster",
        [ Alcotest.test_case "DEX over codec TCP" `Quick test_dex_over_codec_tcp ] );
      ("properties", props);
    ]
