(* Tests for dex_smr: a log of DEX instances with pipelined slots. *)

open Dex_condition
open Dex_net
open Dex_underlying
open Dex_smr

module L = Replicated_log.Make (Dex_core.Dex.Lane (Uc_oracle))

let freq7 = Pair.freq ~n:7 ~t:1

(* Run a log; [workload p ~slot] is replica p's proposal for a slot. *)
let run_log ?(discipline = Discipline.lockstep) ?(seed = 1) ?(window = 4) ?(slots = 5)
    ?(faulty = []) ~workload () =
  let cfg = L.config ~seed ~window ~pair:(fun _ -> freq7) ~slots ~n:7 ~t:1 () in
  let commits = Array.make 7 [] in
  let make p =
    if List.mem p faulty then Adversary.silent ()
    else
      L.replica cfg ~me:p
        ~propose:(fun ~slot -> workload p ~slot)
        ~on_commit:(fun ~slot ~provenance:_ value -> commits.(p) <- (slot, value) :: commits.(p))
  in
  let r = Runner.run (Runner.config ~discipline ~seed ~extra:(L.extra cfg) ~n:7 make) in
  (r, Array.map List.rev commits)

let test_uncontended_log () =
  (* All replicas propose the same command per slot (the no-contention case
     from the introduction): every slot commits that command. *)
  let slots = 5 in
  let r, commits = run_log ~slots ~workload:(fun _p ~slot -> 100 + slot) () in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  Array.iteri
    (fun p log ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "replica %d log" p)
        (List.init slots (fun s -> (s, 100 + s)))
        log)
    commits

let test_in_order_commits () =
  let r, commits = run_log ~slots:8 ~window:3 ~workload:(fun _p ~slot -> slot) () in
  ignore r;
  Array.iter
    (fun log ->
      let slots_order = List.map fst log in
      Alcotest.(check (list int)) "in order" (List.init 8 Fun.id) slots_order)
    commits

let test_contended_slots_agree () =
  (* Replicas disagree on some slots (contention): logs must still be
     identical across replicas. *)
  let workload p ~slot = if slot mod 2 = 0 then 7 else p mod 3 in
  for seed = 1 to 10 do
    let _, commits =
      run_log ~discipline:Discipline.asynchronous ~seed ~slots:6 ~workload ()
    in
    let reference = commits.(0) in
    Alcotest.(check int) "full log" 6 (List.length reference);
    Array.iteri
      (fun p log ->
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "replica %d matches" p)
          reference log)
      commits
  done

let test_log_with_faulty_replica () =
  let workload _p ~slot = 50 + slot in
  let r, commits = run_log ~slots:4 ~faulty:[ 6 ] ~workload () in
  ignore r;
  (* Correct replicas all commit the full log. *)
  for p = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "replica %d commits all" p) 4
      (List.length commits.(p))
  done;
  Alcotest.(check int) "faulty commits nothing" 0 (List.length commits.(6))

let test_window_one_is_sequential () =
  let r, commits = run_log ~slots:4 ~window:1 ~workload:(fun _p ~slot -> slot) () in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  Array.iter (fun log -> Alcotest.(check int) "all slots" 4 (List.length log)) commits

let test_config_validation () =
  Alcotest.check_raises "bad window" (Invalid_argument "Replicated_log.config: window must be >= 1")
    (fun () -> ignore (L.config ~window:0 ~pair:(fun _ -> freq7) ~slots:1 ~n:7 ~t:1 ()));
  Alcotest.check_raises "bad slots" (Invalid_argument "Replicated_log.config: negative slots")
    (fun () -> ignore (L.config ~pair:(fun _ -> freq7) ~slots:(-1) ~n:7 ~t:1 ()))

let test_empty_log () =
  let r, commits = run_log ~slots:0 ~workload:(fun _p ~slot -> slot) () in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  Array.iter (fun log -> Alcotest.(check int) "empty" 0 (List.length log)) commits

(* ------------------------- pipelining edges ------------------------- *)

(* Like [run_log] but exposing activation and an instance wrapper, for the
   on-demand and hostile-delivery edge cases below. *)
let run_log_wrapped ?(discipline = Discipline.lockstep) ?(seed = 1) ?(window = 4)
    ?(slots = 5) ?(policy = Runner.Fifo) ?activation ?base ?(wrap = fun _p i -> i)
    ~workload () =
  let cfg = L.config ~seed ~window ~pair:(fun _ -> freq7) ~slots ~n:7 ~t:1 () in
  let commits = Array.make 7 [] in
  let make p =
    wrap p
      (L.replica ?activation ?base cfg ~me:p
         ~propose:(fun ~slot -> workload p ~slot)
         ~on_commit:(fun ~slot ~provenance:_ value ->
           commits.(p) <- (slot, value) :: commits.(p)))
  in
  let r =
    Runner.run (Runner.config ~discipline ~seed ~policy ~extra:(L.extra cfg) ~n:7 make)
  in
  (r, Array.map List.rev commits)

let test_on_demand_idle () =
  (* Under [`On_demand] with no releases, nothing starts: the run is
     immediately quiescent with zero traffic and zero commits. *)
  let r, commits =
    run_log_wrapped ~activation:`On_demand ~workload:(fun _p ~slot -> slot) ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  Alcotest.(check int) "no traffic" 0 r.Runner.sent;
  Array.iter (fun log -> Alcotest.(check int) "no commits" 0 (List.length log)) commits

let test_on_demand_release_prefix () =
  (* One replica releases slots [0..1]; every other correct replica joins on
     the remote traffic. Exactly the released prefix commits, everywhere —
     the window boundary is the release point, not [slots]. *)
  let released = 2 in
  let wrap p (i : _ Dex_net.Protocol.instance) =
    if p <> 0 then i
    else
      {
        i with
        Dex_net.Protocol.start =
          (fun () -> Dex_net.Protocol.Send (0, L.release released) :: i.start ());
      }
  in
  let r, commits =
    run_log_wrapped ~activation:`On_demand ~slots:5 ~wrap
      ~workload:(fun _p ~slot -> 100 + slot)
      ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  for p = 0 to 6 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica %d commits the released prefix" p)
      (List.init released (fun s -> (s, 100 + s)))
      commits.(p)
  done

let test_base_starts_frontier () =
  (* Recovered replicas pass [base]: slots below it were persisted in a
     previous life, so the log neither runs nor reports them. With every
     replica based at 2 and the full log released, exactly slots [2..4]
     commit, everywhere. *)
  let wrap p (i : _ Dex_net.Protocol.instance) =
    if p <> 0 then i
    else
      {
        i with
        Dex_net.Protocol.start =
          (fun () -> Dex_net.Protocol.Send (0, L.release 5) :: i.start ());
      }
  in
  let r, commits =
    run_log_wrapped ~activation:`On_demand ~slots:5 ~base:2 ~wrap
      ~workload:(fun _p ~slot -> 100 + slot)
      ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  for p = 0 to 6 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica %d commits only from the base" p)
      [ (2, 102); (3, 103); (4, 104) ]
      commits.(p)
  done

let test_skip_fast_forwards () =
  (* Every replica skips itself past slots [0..1] (the crash-recovery move:
     outcomes installed out of band, then the log fast-forwarded); replica 0
     releases the full window. Only slots [2..4] run and report. *)
  let wrap p (i : _ Dex_net.Protocol.instance) =
    {
      i with
      Dex_net.Protocol.start =
        (fun () ->
          let skip = Dex_net.Protocol.Send (p, L.skip 2) in
          let rest = if p = 0 then [ Dex_net.Protocol.Send (0, L.release 5) ] else [] in
          (skip :: rest) @ i.start ());
    }
  in
  let r, commits =
    run_log_wrapped ~activation:`On_demand ~slots:5 ~wrap
      ~workload:(fun _p ~slot -> 100 + slot)
      ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  for p = 0 to 6 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica %d skipped the installed prefix" p)
      [ (2, 102); (3, 103); (4, 104) ]
      commits.(p)
  done

let test_forged_skip_ignored () =
  (* A skip arriving from a peer pid must be ignored — otherwise a Byzantine
     replica could silence another replica's commits. Replica 1 forges
     [skip 3] at replica 0; the full log must still commit everywhere. *)
  let wrap p (i : _ Dex_net.Protocol.instance) =
    let extra =
      if p = 0 then [ Dex_net.Protocol.Send (0, L.release 5) ]
      else if p = 1 then [ Dex_net.Protocol.Send (0, L.skip 3) ]
      else []
    in
    { i with Dex_net.Protocol.start = (fun () -> extra @ i.start ()) }
  in
  let r, commits =
    run_log_wrapped ~activation:`On_demand ~slots:5 ~wrap
      ~workload:(fun _p ~slot -> 100 + slot)
      ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  for p = 0 to 6 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica %d commits the full log" p)
      (List.init 5 (fun s -> (s, 100 + s)))
      commits.(p)
  done

let test_duplicate_slot_messages () =
  (* A network that duplicates every send (legal over at-least-once
     delivery): slot instances must treat redelivery as a no-op, so logs
     stay identical and complete, and nobody commits a slot twice. *)
  let dup acts =
    List.concat_map
      (function Dex_net.Protocol.Send _ as a -> [ a; a ] | a -> [ a ])
      acts
  in
  let wrap _p (i : _ Dex_net.Protocol.instance) =
    {
      Dex_net.Protocol.start = (fun () -> dup (i.Dex_net.Protocol.start ()));
      on_message = (fun ~now ~from m -> dup (i.Dex_net.Protocol.on_message ~now ~from m));
    }
  in
  for seed = 1 to 5 do
    let _, commits =
      run_log_wrapped ~discipline:Discipline.asynchronous ~seed ~slots:6 ~wrap
        ~workload:(fun p ~slot -> if slot mod 2 = 0 then 7 else p mod 3)
        ()
    in
    let reference = commits.(0) in
    Alcotest.(check int) "full log" 6 (List.length reference);
    Array.iteri
      (fun p log ->
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "seed %d replica %d matches" seed p)
          reference log)
      commits
  done

let test_jittered_commit_order () =
  (* Exponential delays and randomized same-instant scheduling reorder slot
     traffic across the window; commits must still surface in slot order at
     every replica, with identical logs. *)
  for seed = 1 to 8 do
    let _, commits =
      run_log_wrapped
        ~discipline:(Discipline.exponential ~mean:1.0)
        ~policy:Runner.Random_tiebreak ~seed ~slots:8 ~window:3
        ~workload:(fun p ~slot -> (slot * 3) + (p mod 2))
        ()
    in
    let reference = commits.(0) in
    Alcotest.(check int) "full log" 8 (List.length reference);
    Array.iteri
      (fun p log ->
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d replica %d in slot order" seed p)
          (List.init 8 Fun.id) (List.map fst log);
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "seed %d replica %d agrees" seed p)
          reference log)
      commits
  done

let () =
  Alcotest.run "dex_smr"
    [
      ( "replicated_log",
        [
          Alcotest.test_case "uncontended log" `Quick test_uncontended_log;
          Alcotest.test_case "in-order commits" `Quick test_in_order_commits;
          Alcotest.test_case "contended slots agree" `Quick test_contended_slots_agree;
          Alcotest.test_case "faulty replica" `Quick test_log_with_faulty_replica;
          Alcotest.test_case "window 1" `Quick test_window_one_is_sequential;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "empty log" `Quick test_empty_log;
        ] );
      ( "pipelining_edges",
        [
          Alcotest.test_case "on-demand idle" `Quick test_on_demand_idle;
          Alcotest.test_case "on-demand release prefix" `Quick test_on_demand_release_prefix;
          Alcotest.test_case "base starts the frontier" `Quick test_base_starts_frontier;
          Alcotest.test_case "skip fast-forwards" `Quick test_skip_fast_forwards;
          Alcotest.test_case "forged skip ignored" `Quick test_forged_skip_ignored;
          Alcotest.test_case "duplicate deliveries" `Quick test_duplicate_slot_messages;
          Alcotest.test_case "jittered commit order" `Quick test_jittered_commit_order;
        ] );
    ]
