(* Tests for dex_vector: views, input vectors, frequency statistics. *)

open Dex_vector

let view_of l = View.of_list l

let some v = Some v

let test_bottom () =
  let j = View.bottom 5 in
  Alcotest.(check int) "dim" 5 (View.dim j);
  Alcotest.(check int) "filled" 0 (View.filled j);
  for k = 0 to 4 do
    Alcotest.(check bool) "all bottom" true (View.get j k = None)
  done

let test_bottom_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "View.bottom: dimension must be positive")
    (fun () -> ignore (View.bottom 0))

let test_set_get_filled () =
  let j = View.bottom 4 in
  View.set j 1 7;
  Alcotest.(check int) "filled 1" 1 (View.filled j);
  View.set j 1 8;
  Alcotest.(check int) "overwrite keeps filled" 1 (View.filled j);
  Alcotest.(check bool) "last write wins" true (View.get j 1 = Some 8);
  View.clear_entry j 1;
  Alcotest.(check int) "cleared" 0 (View.filled j)

let test_occurrences () =
  let j = view_of [ some 1; some 1; None; some 2; some 1 ] in
  Alcotest.(check int) "#1" 3 (View.occurrences j 1);
  Alcotest.(check int) "#2" 1 (View.occurrences j 2);
  Alcotest.(check int) "#3" 0 (View.occurrences j 3)

let test_first_most_frequent () =
  let j = view_of [ some 1; some 1; some 2; None ] in
  Alcotest.(check (option int)) "1st" (Some 1) (View.first_most_frequent j)

let test_first_tie_breaks_largest () =
  (* Paper: "If two or more values appear most often, the largest one is
     selected." *)
  let j = view_of [ some 1; some 3; some 1; some 3 ] in
  Alcotest.(check (option int)) "tie -> largest" (Some 3) (View.first_most_frequent j)

let test_first_all_bottom () =
  Alcotest.(check (option int)) "none" None (View.first_most_frequent (View.bottom 3))

let test_second_most_frequent () =
  let j = view_of [ some 5; some 5; some 5; some 2; some 2; some 9 ] in
  Alcotest.(check (option int)) "2nd" (Some 2) (View.second_most_frequent j);
  let unanimous = view_of [ some 4; some 4 ] in
  Alcotest.(check (option int)) "no 2nd" None (View.second_most_frequent unanimous)

let test_second_tie_breaks_largest () =
  let j = view_of [ some 5; some 5; some 5; some 2; some 9 ] in
  (* 2 and 9 both appear once; 2nd(J) = 1st(Ĵ) picks the largest. *)
  Alcotest.(check (option int)) "tie -> largest" (Some 9) (View.second_most_frequent j)

let test_freq_margin () =
  let j = view_of [ some 1; some 1; some 1; some 2; None ] in
  Alcotest.(check int) "3 - 1" 2 (View.freq_margin j);
  let unanimous = view_of [ some 1; some 1 ] in
  Alcotest.(check int) "no second -> count" 2 (View.freq_margin unanimous);
  Alcotest.(check int) "empty view" 0 (View.freq_margin (View.bottom 4))

let test_top_two_counts () =
  let j = view_of [ some 1; some 1; some 2 ] in
  let (v1, c1), second = View.top_two_counts j in
  Alcotest.(check int) "1st value" 1 v1;
  Alcotest.(check int) "1st count" 2 c1;
  (match second with
  | Some (v2, c2) ->
    Alcotest.(check int) "2nd value" 2 v2;
    Alcotest.(check int) "2nd count" 1 c2
  | None -> Alcotest.fail "expected a second value");
  Alcotest.check_raises "all-bottom raises"
    (Invalid_argument "View.top_two_counts: all-default view") (fun () ->
      ignore (View.top_two_counts (View.bottom 2)))

let test_contains () =
  let j = view_of [ some 1; None; some 3 ] in
  let i = view_of [ some 1; some 2; some 3 ] in
  Alcotest.(check bool) "J <= I" true (View.contains j i);
  Alcotest.(check bool) "I </= J" false (View.contains i j);
  let j_bad = view_of [ some 9; None; some 3 ] in
  Alcotest.(check bool) "mismatching entry" false (View.contains j_bad i)

let test_contains_reflexive () =
  let j = view_of [ some 1; None ] in
  Alcotest.(check bool) "J <= J" true (View.contains j j)

let test_distance () =
  let a = view_of [ some 1; some 2; None; some 4 ] in
  let b = view_of [ some 1; some 3; some 5; None ] in
  Alcotest.(check int) "three diffs" 3 (View.distance a b);
  Alcotest.(check int) "self distance" 0 (View.distance a a)

let test_distance_dim_mismatch () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "View.distance: dimension mismatch")
    (fun () -> ignore (View.distance (View.bottom 2) (View.bottom 3)))

let test_compatible_merge () =
  let a = view_of [ some 1; None; some 3 ] in
  let b = view_of [ None; some 2; some 3 ] in
  Alcotest.(check bool) "compatible" true (View.compatible a b);
  let m = View.merge a b in
  Alcotest.(check (list (option int))) "merge union" [ some 1; some 2; some 3 ]
    (View.to_list m);
  let c = view_of [ some 9; None; None ] in
  Alcotest.(check bool) "incompatible" false (View.compatible a c);
  Alcotest.check_raises "merge incompatible" (Invalid_argument "View.merge: incompatible views")
    (fun () -> ignore (View.merge a c))

let test_values_sorted_distinct () =
  let j = view_of [ some 3; some 1; some 3; None; some 2 ] in
  Alcotest.(check (list int)) "sorted distinct" [ 1; 2; 3 ] (View.values j)

let test_copy_independent () =
  let j = view_of [ some 1; None ] in
  let j' = View.copy j in
  View.set j' 1 5;
  Alcotest.(check bool) "original untouched" true (View.get j 1 = None)

let test_iv_basic () =
  let i = Input_vector.of_list [ 1; 2; 2; 2 ] in
  Alcotest.(check int) "dim" 4 (Input_vector.dim i);
  Alcotest.(check int) "get" 2 (Input_vector.get i 3);
  Alcotest.(check int) "occurrences" 3 (Input_vector.occurrences i 2);
  Alcotest.(check int) "1st" 2 (Input_vector.first_most_frequent i);
  Alcotest.(check (option int)) "2nd" (Some 1) (Input_vector.second_most_frequent i);
  Alcotest.(check int) "margin" 2 (Input_vector.freq_margin i)

let test_iv_unanimous () =
  let i = Input_vector.make 5 9 in
  Alcotest.(check int) "margin is n" 5 (Input_vector.freq_margin i);
  Alcotest.(check (option int)) "no second" None (Input_vector.second_most_frequent i)

let test_iv_set_functional () =
  let i = Input_vector.make 3 0 in
  let i' = Input_vector.set i 1 7 in
  Alcotest.(check int) "updated" 7 (Input_vector.get i' 1);
  Alcotest.(check int) "original intact" 0 (Input_vector.get i 1)

let test_iv_mask () =
  let i = Input_vector.of_list [ 1; 2; 3; 4 ] in
  let j = Input_vector.mask i [ 0; 2 ] in
  Alcotest.(check (list (option int))) "masked" [ None; some 2; None; some 4 ]
    (View.to_list j);
  Alcotest.(check bool) "view contained in I" true (View.contains j (Input_vector.to_view i))

let test_iv_distance () =
  let a = Input_vector.of_list [ 1; 2; 3 ] in
  let b = Input_vector.of_list [ 1; 9; 3 ] in
  Alcotest.(check int) "distance 1" 1 (Input_vector.distance a b)

let test_iv_enumerate () =
  let all = Input_vector.enumerate ~n:3 ~values:[ 0; 1 ] in
  Alcotest.(check int) "2^3 vectors" 8 (List.length all);
  let distinct = List.sort_uniq compare (List.map Input_vector.to_list all) in
  Alcotest.(check int) "all distinct" 8 (List.length distinct)

let test_iv_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Input_vector.of_array: empty") (fun () ->
      ignore (Input_vector.of_array [||]))

(* Property tests. *)

let gen_view n =
  QCheck.Gen.(array_size (return n) (opt (int_bound 4)))

let arb_view n =
  QCheck.make
    ~print:(fun arr -> Format.asprintf "%a" View.pp (View.of_array arr))
    (gen_view n)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance symmetric" ~count:500
    (QCheck.pair (arb_view 6) (arb_view 6))
    (fun (a, b) ->
      let ja = View.of_array a and jb = View.of_array b in
      View.distance ja jb = View.distance jb ja)

let prop_distance_triangle =
  QCheck.Test.make ~name:"distance triangle inequality" ~count:500
    (QCheck.triple (arb_view 6) (arb_view 6) (arb_view 6))
    (fun (a, b, c) ->
      let ja = View.of_array a and jb = View.of_array b and jc = View.of_array c in
      View.distance ja jc <= View.distance ja jb + View.distance jb jc)

let prop_merge_extends_both =
  QCheck.Test.make ~name:"merge extends both operands" ~count:500
    (QCheck.pair (arb_view 6) (arb_view 6))
    (fun (a, b) ->
      let ja = View.of_array a and jb = View.of_array b in
      QCheck.assume (View.compatible ja jb);
      let m = View.merge ja jb in
      View.contains ja m && View.contains jb m)

let prop_contains_implies_zero_conflict =
  QCheck.Test.make ~name:"containment implies compatibility" ~count:500
    (QCheck.pair (arb_view 6) (arb_view 6))
    (fun (a, b) ->
      let ja = View.of_array a and jb = View.of_array b in
      QCheck.assume (View.contains ja jb);
      View.compatible ja jb)

let prop_first_most_frequent_is_max =
  QCheck.Test.make ~name:"1st(J) has maximal count" ~count:500 (arb_view 8) (fun a ->
      let j = View.of_array a in
      match View.first_most_frequent j with
      | None -> View.filled j = 0
      | Some v ->
        List.for_all (fun u -> View.occurrences j u <= View.occurrences j v) (View.values j))

let prop_mask_distance_bound =
  QCheck.Test.make ~name:"masking k entries gives distance <= k" ~count:500
    (QCheck.pair (QCheck.array_of_size (QCheck.Gen.return 7) (QCheck.int_bound 4))
       (QCheck.int_bound 6))
    (fun (arr, k) ->
      QCheck.assume (Array.length arr = 7);
      let i = Input_vector.of_array arr in
      let ks = List.init (min k 7) (fun x -> x) in
      let j = Input_vector.mask i ks in
      View.distance j (Input_vector.to_view i) = List.length ks)

(* Reference-model check: the incremental counting statistics agree with
   naive recomputation from scratch. *)
let prop_view_stats_match_reference =
  QCheck.Test.make ~name:"view stats match naive reference" ~count:500 (arb_view 9)
    (fun arr ->
      let j = View.of_array arr in
      let entries = Array.to_list arr in
      let values = List.filter_map Fun.id entries in
      let naive_filled = List.length values in
      let naive_occ v = List.length (List.filter (Value.equal v) values) in
      let distinct = List.sort_uniq Value.compare values in
      let naive_margin =
        match
          List.sort (fun a b -> compare b a) (List.map (fun v -> naive_occ v) distinct)
        with
        | [] -> 0
        | [ c ] -> c
        | c1 :: c2 :: _ -> c1 - c2
      in
      View.filled j = naive_filled
      && List.for_all (fun v -> View.occurrences j v = naive_occ v) distinct
      && View.freq_margin j = naive_margin
      && View.values j = distinct)

(* Oracle test for the incremental statistics layer: a random sequence of
   View.set / View.clear_entry operations — overwrites included, modelling
   equivocators re-sending different values — must leave the statistics
   identical to rebuilding them from scratch out of the final entries. *)
let prop_view_stats_oracle =
  QCheck.Test.make ~name:"incremental stats = from-scratch rebuild" ~count:1000
    QCheck.(list (pair (int_bound 6) (option (int_bound 4))))
    (fun ops ->
      let j = View.bottom 7 in
      List.iter
        (fun (k, op) ->
          match op with
          | Some v -> View.set j k v
          | None -> if View.get j k <> None then View.clear_entry j k)
        ops;
      let s = View.stats j in
      let s' = View.stats (View.of_list (View.to_list j)) in
      View_stats.filled s = View_stats.filled s'
      && View_stats.distinct s = View_stats.distinct s'
      && View_stats.margin s = View_stats.margin s'
      && View_stats.first s = View_stats.first s'
      && View_stats.second s = View_stats.second s'
      && View_stats.values s = View_stats.values s'
      && List.for_all
           (fun v -> View_stats.count s v = View_stats.count s' v)
           (View_stats.values s'))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_view_stats_match_reference;
      prop_view_stats_oracle;
      prop_distance_symmetric;
      prop_distance_triangle;
      prop_merge_extends_both;
      prop_contains_implies_zero_conflict;
      prop_first_most_frequent_is_max;
      prop_mask_distance_bound;
    ]

let () =
  Alcotest.run "dex_vector"
    [
      ( "view",
        [
          Alcotest.test_case "bottom" `Quick test_bottom;
          Alcotest.test_case "bottom invalid" `Quick test_bottom_invalid;
          Alcotest.test_case "set/get/filled" `Quick test_set_get_filled;
          Alcotest.test_case "occurrences" `Quick test_occurrences;
          Alcotest.test_case "1st most frequent" `Quick test_first_most_frequent;
          Alcotest.test_case "1st tie -> largest" `Quick test_first_tie_breaks_largest;
          Alcotest.test_case "1st of all-bottom" `Quick test_first_all_bottom;
          Alcotest.test_case "2nd most frequent" `Quick test_second_most_frequent;
          Alcotest.test_case "2nd tie -> largest" `Quick test_second_tie_breaks_largest;
          Alcotest.test_case "frequency margin" `Quick test_freq_margin;
          Alcotest.test_case "top two counts" `Quick test_top_two_counts;
          Alcotest.test_case "containment" `Quick test_contains;
          Alcotest.test_case "containment reflexive" `Quick test_contains_reflexive;
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "distance dim mismatch" `Quick test_distance_dim_mismatch;
          Alcotest.test_case "compatible + merge" `Quick test_compatible_merge;
          Alcotest.test_case "values sorted distinct" `Quick test_values_sorted_distinct;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
        ] );
      ( "input_vector",
        [
          Alcotest.test_case "basics" `Quick test_iv_basic;
          Alcotest.test_case "unanimous" `Quick test_iv_unanimous;
          Alcotest.test_case "functional set" `Quick test_iv_set_functional;
          Alcotest.test_case "mask" `Quick test_iv_mask;
          Alcotest.test_case "distance" `Quick test_iv_distance;
          Alcotest.test_case "enumerate" `Quick test_iv_enumerate;
          Alcotest.test_case "empty rejected" `Quick test_iv_empty_rejected;
        ] );
      ("properties", props);
    ]
