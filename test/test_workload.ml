(* Tests for dex_workload: input generators, fault specs, and the uniform
   scenario runner that drives all Table-1 algorithms. *)

open Dex_stdext
open Dex_vector
open Dex_metrics
open Dex_workload

let rng () = Prng.create ~seed:11

let test_unanimous () =
  let i = Input_gen.unanimous ~n:5 9 in
  Alcotest.(check int) "all 9" 5 (Input_vector.occurrences i 9)

let test_two_valued () =
  let i = Input_gen.two_valued ~rng:(rng ()) ~n:10 ~majority:5 ~minority:3 ~majority_count:7 in
  Alcotest.(check int) "majority count" 7 (Input_vector.occurrences i 5);
  Alcotest.(check int) "minority count" 3 (Input_vector.occurrences i 3)

let test_two_valued_invalid () =
  Alcotest.check_raises "bad count" (Invalid_argument "Input_gen.two_valued: bad majority_count")
    (fun () ->
      ignore (Input_gen.two_valued ~rng:(rng ()) ~n:4 ~majority:1 ~minority:0 ~majority_count:5))

let test_with_freq_margin_exact () =
  let g = rng () in
  List.iter
    (fun (n, margin) ->
      let i = Input_gen.with_freq_margin ~rng:g ~n ~margin in
      Alcotest.(check int)
        (Printf.sprintf "margin %d on n=%d" margin n)
        margin (Input_vector.freq_margin i))
    [ (7, 7); (7, 5); (7, 3); (7, 1); (7, 0); (7, 2); (7, 4); (13, 9); (13, 8); (12, 0) ]

let test_with_freq_margin_unachievable () =
  Alcotest.check_raises "n-1 impossible"
    (Invalid_argument "Input_gen.with_freq_margin: margin unachievable for this n") (fun () ->
      ignore (Input_gen.with_freq_margin ~rng:(rng ()) ~n:8 ~margin:7))

let test_with_privileged_count () =
  let i = Input_gen.with_privileged_count ~rng:(rng ()) ~n:9 ~m:7 ~count:5 ~others:[ 0; 1 ] in
  Alcotest.(check int) "m count" 5 (Input_vector.occurrences i 7);
  Alcotest.(check int) "others fill" 4
    (Input_vector.occurrences i 0 + Input_vector.occurrences i 1)

let test_privileged_validation () =
  Alcotest.check_raises "m in others"
    (Invalid_argument "Input_gen.with_privileged_count: others contains m") (fun () ->
      ignore (Input_gen.with_privileged_count ~rng:(rng ()) ~n:4 ~m:7 ~count:2 ~others:[ 7 ]))

let test_skewed_bias_extremes () =
  let g = rng () in
  let all_fav = Input_gen.skewed ~rng:g ~n:20 ~favorite:9 ~others:[ 1 ] ~bias:1.0 in
  Alcotest.(check int) "bias 1" 20 (Input_vector.occurrences all_fav 9);
  let none_fav = Input_gen.skewed ~rng:g ~n:20 ~favorite:9 ~others:[ 1 ] ~bias:0.0 in
  Alcotest.(check int) "bias 0" 0 (Input_vector.occurrences none_fav 9)

let test_uniform_in_range () =
  let i = Input_gen.uniform ~rng:(rng ()) ~n:50 ~values:[ 2; 4; 6 ] in
  List.iter
    (fun v -> Alcotest.(check bool) "in universe" true (List.mem v [ 2; 4; 6 ]))
    (Input_vector.to_list i)

let test_fault_spec_sets () =
  let spec = Fault_spec.silent_set [ 1; 3 ] in
  Alcotest.(check bool) "p1 silent" true (spec 1 = Fault_spec.Silent);
  Alcotest.(check bool) "p0 correct" true (spec 0 = Fault_spec.Correct);
  Alcotest.(check (list int)) "faulty pids" [ 1; 3 ] (Fault_spec.faulty_pids ~n:5 spec);
  Alcotest.(check (list int)) "correct pids" [ 0; 2; 4 ] (Fault_spec.correct_pids ~n:5 spec);
  Alcotest.(check int) "count" 2 (Fault_spec.count_faulty ~n:5 spec)

let test_fault_spec_last_k () =
  let spec = Fault_spec.last_k ~n:7 ~k:2 Fault_spec.Silent in
  Alcotest.(check (list int)) "last two" [ 5; 6 ] (Fault_spec.faulty_pids ~n:7 spec)

let test_fault_spec_random_stable () =
  (* The returned spec must be a pure function: repeated queries agree. *)
  let spec =
    Fault_spec.random ~rng:(rng ()) ~n:10 ~f:3 ~behaviours:[ Fault_spec.Silent ]
  in
  let a = Fault_spec.faulty_pids ~n:10 spec in
  let b = Fault_spec.faulty_pids ~n:10 spec in
  Alcotest.(check (list int)) "stable" a b;
  Alcotest.(check int) "exactly f" 3 (List.length a)

(* ------------------------- scenario runner ------------------------- *)

let test_scenario_dex_freq_one_step () =
  let n = 7 and t = 1 in
  let out =
    Scenario.run
      (Scenario.spec ~algo:Scenario.Dex_freq ~n ~t ~proposals:(Input_gen.unanimous ~n 5) ())
  in
  Alcotest.(check bool) "all decided" true out.Scenario.all_decided;
  Alcotest.(check bool) "agreement" true out.Scenario.agreement;
  Alcotest.(check (option int)) "value" (Some 5) out.Scenario.value;
  Alcotest.(check (list (pair string int))) "all one-step" [ ("one-step", 7) ] out.Scenario.tags;
  Alcotest.(check bool) "quiescent" true out.Scenario.quiescent;
  Alcotest.(check (float 1e-9)) "fraction fast" 1.0 (Scenario.fraction_fast out ~max_steps:1);
  Alcotest.(check (float 1e-9)) "mean steps" 1.0 (Scenario.mean_steps out)

let test_scenario_all_algorithms_unanimous () =
  (* Every algorithm of the Table-1 matrix decides a unanimous input and
     agrees, at its own resilience point. *)
  List.iter
    (fun (algo, n, t) ->
      let out =
        Scenario.run
          (Scenario.spec ~algo ~n ~t ~proposals:(Input_gen.unanimous ~n 5) ())
      in
      Alcotest.(check bool) (Scenario.algo_name algo ^ " decided") true out.Scenario.all_decided;
      Alcotest.(check (option int)) (Scenario.algo_name algo ^ " value") (Some 5)
        out.Scenario.value)
    [
      (Scenario.Dex_freq, 7, 1);
      (Scenario.Dex_prv 5, 6, 1);
      (Scenario.Bosco, 6, 1);
      (Scenario.Brasileiro, 4, 1);
      (Scenario.Plain, 4, 1);
    ]

let test_scenario_real_uc () =
  let n = 7 and t = 1 in
  let out =
    Scenario.run
      (Scenario.spec ~uc:Scenario.Real ~algo:Scenario.Dex_freq ~n ~t
         ~proposals:(Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 1 ]) ())
  in
  Alcotest.(check bool) "all decided" true out.Scenario.all_decided;
  Alcotest.(check bool) "agreement" true out.Scenario.agreement

let test_scenario_with_faults () =
  let n = 7 and t = 1 in
  let out =
    Scenario.run
      (Scenario.spec ~algo:Scenario.Dex_freq ~n ~t
         ~proposals:(Input_gen.unanimous ~n 4)
         ~faults:(Fault_spec.silent_set [ 6 ])
         ())
  in
  Alcotest.(check (list int)) "six correct" [ 0; 1; 2; 3; 4; 5 ] out.Scenario.correct;
  Alcotest.(check bool) "all correct decided" true out.Scenario.all_decided;
  Alcotest.(check (option int)) "unanimity" (Some 4) out.Scenario.value

let test_scenario_dimension_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Scenario.run: proposals dimension disagrees with n") (fun () ->
      ignore
        (Scenario.run
           (Scenario.spec ~algo:Scenario.Plain ~n:4 ~t:1
              ~proposals:(Input_gen.unanimous ~n:5 1) ())))

let test_scenario_step_shape_comparison () =
  (* The paper's trade-off on a pessimistic input: Bosco falls back in 3
     steps, DEX in 4, Plain floors at 2. *)
  let proposals_7 = Input_vector.of_list [ 5; 5; 5; 5; 1; 1; 1 ] in
  let dex =
    Scenario.run (Scenario.spec ~algo:Scenario.Dex_freq ~n:7 ~t:1 ~proposals:proposals_7 ())
  in
  let bosco =
    Scenario.run (Scenario.spec ~algo:Scenario.Bosco ~n:7 ~t:1 ~proposals:proposals_7 ())
  in
  let plain =
    Scenario.run (Scenario.spec ~algo:Scenario.Plain ~n:7 ~t:1 ~proposals:proposals_7 ())
  in
  Alcotest.(check (float 1e-9)) "DEX worst case 4" 4.0 (Scenario.mean_steps dex);
  Alcotest.(check (float 1e-9)) "Bosco fallback 3" 3.0 (Scenario.mean_steps bosco);
  Alcotest.(check (float 1e-9)) "Plain floor 2" 2.0 (Scenario.mean_steps plain)

let test_scenario_dex_beats_bosco_on_margin_inputs () =
  (* The headline coverage claim: margins in (2t, 4t] give DEX a two-step
     decision while Bosco (weak, snapshot-based) falls back. margin 3 on
     n = 7: DEX two-step; Bosco needs > (n+3t)/2 = 5 matching among its
     n - t = 6 snapshot — 5 matches means... it can one-step on lucky
     snapshots, so compare mean steps across seeds instead. *)
  let proposals = Input_vector.of_list [ 5; 5; 5; 5; 5; 1; 1 ] in
  let mean algo =
    Stats.mean
      (List.init 20 (fun seed ->
           Scenario.mean_steps
             (Scenario.run
                (Scenario.spec ~seed
                   ~discipline:Dex_net.Discipline.asynchronous ~algo ~n:7 ~t:1 ~proposals ()))))
  in
  let dex = mean Scenario.Dex_freq and bosco = mean Scenario.Bosco in
  Alcotest.(check bool)
    (Printf.sprintf "DEX (%.2f) faster than Bosco (%.2f)" dex bosco)
    true (dex < bosco)

(* Swarm fuzz: a random point of the whole configuration space — algorithm,
   UC implementation, resilience, input, fault pattern, schedule — must
   always terminate with agreement among correct processes. *)
let prop_swarm_safety =
  let gen =
    QCheck.Gen.(
      let* algo_ix = int_bound 6 in
      let* uc_ix = int_bound 2 in
      let* t = int_range 0 2 in
      let* seed = int_bound 1_000_000 in
      let* bias10 = int_range 3 10 in
      let* fault_ix = int_bound 3 in
      let* sched_ix = int_bound 1 in
      return (algo_ix, uc_ix, t, seed, bias10, fault_ix, sched_ix))
  in
  QCheck.Test.make ~name:"swarm: any config terminates and agrees" ~count:120
    (QCheck.make
       ~print:(fun (a, u, t, s, b, f, d) ->
         Printf.sprintf "algo=%d uc=%d t=%d seed=%d bias=%d fault=%d sched=%d" a u t s b f d)
       gen)
    (fun (algo_ix, uc_ix, t, seed, bias10, fault_ix, sched_ix) ->
      let algo =
        List.nth
          [
            Scenario.Dex_freq;
            Scenario.Dex_freq_snapshot;
            Scenario.Dex_prv 5;
            Scenario.Bosco;
            Scenario.Friedman;
            Scenario.Brasileiro;
            Scenario.Izumi;
          ]
          algo_ix
      in
      (* Minimal n for the algorithm's resilience bound (+1 headroom). *)
      let n =
        let base =
          match algo with
          | Scenario.Dex_freq | Scenario.Dex_freq_snapshot -> (6 * t) + 1
          | Scenario.Dex_prv _ | Scenario.Bosco | Scenario.Friedman
          | Scenario.Kuo_chen | Scenario.Hbft ->
            (5 * t) + 1
          | Scenario.Brasileiro | Scenario.Izumi -> (4 * t) + 1 (* > 4t for Real UC *)
          | Scenario.Sync_flood | Scenario.Plain -> (4 * t) + 1
        in
        max 5 (base + 1)
      in
      let uc = List.nth [ Scenario.Oracle; Scenario.Real; Scenario.Leader ] uc_ix in
      let rng = Prng.create ~seed:(seed + 13) in
      let proposals =
        Input_gen.skewed ~rng ~n ~favorite:5 ~others:[ 1; 2 ]
          ~bias:(float_of_int bias10 /. 10.0)
      in
      let faults =
        if t = 0 then Fault_spec.none
        else
          match fault_ix with
          | 0 -> Fault_spec.none
          | 1 -> Fault_spec.last_k ~n ~k:t Fault_spec.Silent
          | 2 -> Fault_spec.last_k ~n ~k:t Fault_spec.Crash_mid
          | _ -> Fault_spec.equivocate_split [ n - 1 ] ~n ~low:1 ~high:5
      in
      let discipline =
        if sched_ix = 0 then Dex_net.Discipline.lockstep else Dex_net.Discipline.asynchronous
      in
      let out = Scenario.run (Scenario.spec ~uc ~seed ~discipline ~faults ~algo ~n ~t ~proposals ()) in
      out.Scenario.all_decided && out.Scenario.agreement)

let () =
  Alcotest.run "dex_workload"
    [
      ( "input_gen",
        [
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "two-valued" `Quick test_two_valued;
          Alcotest.test_case "two-valued invalid" `Quick test_two_valued_invalid;
          Alcotest.test_case "exact frequency margins" `Quick test_with_freq_margin_exact;
          Alcotest.test_case "unachievable margin" `Quick test_with_freq_margin_unachievable;
          Alcotest.test_case "privileged count" `Quick test_with_privileged_count;
          Alcotest.test_case "privileged validation" `Quick test_privileged_validation;
          Alcotest.test_case "skew extremes" `Quick test_skewed_bias_extremes;
          Alcotest.test_case "uniform range" `Quick test_uniform_in_range;
        ] );
      ( "fault_spec",
        [
          Alcotest.test_case "silent sets" `Quick test_fault_spec_sets;
          Alcotest.test_case "last k" `Quick test_fault_spec_last_k;
          Alcotest.test_case "random stable" `Quick test_fault_spec_random_stable;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "dex one-step" `Quick test_scenario_dex_freq_one_step;
          Alcotest.test_case "all algorithms" `Quick test_scenario_all_algorithms_unanimous;
          Alcotest.test_case "real UC" `Quick test_scenario_real_uc;
          Alcotest.test_case "with faults" `Quick test_scenario_with_faults;
          Alcotest.test_case "dimension mismatch" `Quick test_scenario_dimension_mismatch;
          Alcotest.test_case "step-shape comparison" `Quick test_scenario_step_shape_comparison;
          Alcotest.test_case "DEX beats Bosco on margin inputs" `Quick
            test_scenario_dex_beats_bosco_on_margin_inputs;
          QCheck_alcotest.to_alcotest prop_swarm_safety;
        ] );
    ]
