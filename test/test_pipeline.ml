(* Unit tests for the staged replica pipeline (lib/service): admission
   verdicts and the oldest-age invariant, batcher cut/tick timing (settle
   exclusion, cap truncation, oldest re-arming, overdue valve, stall
   watchdog), the durability lane's persist-before-reply gate and snapshot
   cadence, and the catch-up stage's [t+1] vote thresholds. None of these
   need a live deployment — they drive the stages directly. *)

open Dex_service
module Registry = Dex_metrics.Registry
module Sm = State_machine

let req ?(client = 1) rid = { Wire.client; rid; command = Sm.Add ("k", 1) }

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dex-pipeline-test-%d-%d" (Unix.getpid ()) !dir_counter)

(* ----------------------------- admission ----------------------------- *)

let test_admission_verdicts () =
  let adm = Admission.create ~cap:2 in
  Alcotest.(check bool) "admitted" true (Admission.admit adm ~now:1.0 (req 1) = Admission.Admitted);
  Alcotest.(check bool) "duplicate" true (Admission.admit adm ~now:2.0 (req 1) = Admission.Duplicate);
  Alcotest.(check bool) "second" true (Admission.admit adm ~now:2.0 (req 2) = Admission.Admitted);
  Alcotest.(check bool) "overflow" true (Admission.admit adm ~now:3.0 (req 3) = Admission.Overflow);
  (* A duplicate of a pending request is reported as such even at cap. *)
  Alcotest.(check bool) "dup at cap" true (Admission.admit adm ~now:3.0 (req 2) = Admission.Duplicate);
  Alcotest.(check int) "size" 2 (Admission.size adm)

let test_admission_oldest () =
  let adm = Admission.create ~cap:8 in
  Alcotest.(check bool) "empty oldest" true (Admission.oldest adm = Float.infinity);
  ignore (Admission.admit adm ~now:5.0 (req 1));
  ignore (Admission.admit adm ~now:3.0 (req 2));
  ignore (Admission.admit adm ~now:9.0 (req 3));
  Alcotest.(check (float 0.0)) "oldest tracks min" 3.0 (Admission.oldest adm);
  Admission.remove adm ~client:1 ~rid:2;
  (* [remove] does not rescan; the owner refreshes after a batch of
     removals. *)
  Admission.refresh_oldest adm;
  Alcotest.(check (float 0.0)) "refreshed" 5.0 (Admission.oldest adm);
  Admission.remove adm ~client:1 ~rid:1;
  Admission.remove adm ~client:1 ~rid:3;
  Admission.refresh_oldest adm;
  Alcotest.(check bool) "drained resets" true (Admission.oldest adm = Float.infinity)

(* ------------------------------ batcher ------------------------------ *)

let test_cut_settle_exclusion () =
  let adm = Admission.create ~cap:8 in
  ignore (Admission.admit adm ~now:1.0 (req 1));
  ignore (Admission.admit adm ~now:1.0 (req 2));
  ignore (Admission.admit adm ~now:1.95 (req 3));
  (* settle = 0.1: requests admitted at 1.0 have settled by now = 2.0, the
     one from 1.95 has not. *)
  let batch = Batcher.cut adm ~now:2.0 ~settle:0.1 ~cap:256 in
  Alcotest.(check int) "settled only" 2 (List.length batch);
  Alcotest.(check bool) "unsettled excluded" true
    (List.for_all (fun (r : Wire.request) -> r.Wire.rid <> 3) batch)

let test_cut_cap_truncation () =
  let adm = Admission.create ~cap:64 in
  for rid = 1 to 10 do
    ignore (Admission.admit adm ~now:1.0 (req rid))
  done;
  let batch = Batcher.cut adm ~now:2.0 ~settle:0.1 ~cap:4 in
  Alcotest.(check int) "capped" 4 (List.length batch);
  (* Canonical truncation keeps the lowest (client, rid) keys, so the cut
     is deterministic across replicas. *)
  Alcotest.(check bool) "lowest rids kept" true
    (List.for_all (fun (r : Wire.request) -> r.Wire.rid <= 4) batch)

let test_cut_rearms_oldest () =
  let adm = Admission.create ~cap:8 in
  ignore (Admission.admit adm ~now:1.0 (req 1));
  ignore (Admission.admit adm ~now:1.9 (req 2));
  let batch = Batcher.cut adm ~now:2.0 ~settle:0.5 ~cap:256 in
  Alcotest.(check int) "one settled" 1 (List.length batch);
  (* The cut request stays pending until applied (it may lose the slot), so
     [oldest] still spans the whole set — including both the proposed
     request and the unsettled one. *)
  Alcotest.(check (float 0.0)) "oldest spans proposed too" 1.0 (Admission.oldest adm);
  Admission.remove adm ~client:1 ~rid:1;
  Admission.refresh_oldest adm;
  Alcotest.(check (float 0.0)) "re-arms for the straggler" 1.9 (Admission.oldest adm)

let tick ?(now = 10.0) ?(catching_up = false) ?(backlog = 1) ?(oldest = 0.0) ?(settle = 0.002)
    ?(batch_delay = 0.004) ?(catchup_retry = 0.05) ?(idle = true) ?(outstanding = false)
    ?(last_progress = 10.0) ?(last_watchdog = 0.0) () =
  Batcher.tick ~now ~catching_up ~backlog ~oldest ~settle ~batch_delay ~catchup_retry ~idle
    ~outstanding ~last_progress ~last_watchdog

let test_tick_fire () =
  Alcotest.(check bool) "idle + settled backlog fires" true (tick ()).Batcher.fire;
  Alcotest.(check bool) "no backlog" false (tick ~backlog:0 ()).Batcher.fire;
  Alcotest.(check bool) "catching up" false (tick ~catching_up:true ()).Batcher.fire;
  Alcotest.(check bool) "not settled" false (tick ~oldest:9.999 ()).Batcher.fire;
  Alcotest.(check bool) "slot in flight" false (tick ~idle:false ()).Batcher.fire;
  (* The overdue valve: a stalled in-flight slot stops gating the release
     after ~10 ticks without progress. *)
  Alcotest.(check bool) "overdue valve" true
    (tick ~idle:false ~last_progress:9.9 ()).Batcher.fire

let test_tick_watchdog () =
  let sa = Batcher.stall_after ~catchup_retry:0.05 ~batch_delay:0.004 in
  Alcotest.(check (float 1e-9)) "stall_after is the larger bound" 0.25 sa;
  let stalled = tick ~backlog:0 ~outstanding:true ~last_progress:9.0 () in
  Alcotest.(check bool) "wedged after stall" true stalled.Batcher.wedged;
  Alcotest.(check bool) "healthy never wedges" false
    (tick ~backlog:0 ~outstanding:true ~last_progress:9.9 ()).Batcher.wedged;
  Alcotest.(check bool) "nothing outstanding" false
    (tick ~backlog:0 ~outstanding:false ~last_progress:9.0 ()).Batcher.wedged;
  (* The watchdog fires once per stall window, not once per tick. *)
  Alcotest.(check bool) "recent firing suppresses" false
    (tick ~backlog:0 ~outstanding:true ~last_progress:9.0 ~last_watchdog:9.9 ()).Batcher.wedged;
  Alcotest.(check bool) "catch-up suppresses" false
    (tick ~catching_up:true ~backlog:0 ~outstanding:true ~last_progress:9.0 ()).Batcher.wedged

(* --------------------------- durability lane --------------------------- *)

let test_lane_inert () =
  let metrics = Registry.create () in
  let lane, recovered = Durability_lane.create ~segment_bytes:4096 ~metrics () in
  Alcotest.(check bool) "disabled" false (Durability_lane.enabled lane);
  Alcotest.(check bool) "no prior state" false recovered.Durability_lane.had_state;
  Alcotest.(check int) "append is lsn 0" 0 (Durability_lane.append lane "rec");
  let got = ref [] in
  let reply ~client ~rid outcome = got := (client, rid, outcome) :: !got in
  Durability_lane.gate lane ~client:1 ~rid:2 ~lsn:0 Wire.Busy ~reply;
  Alcotest.(check int) "lsn 0 replies immediately" 1 (List.length !got);
  (* No capture cadence without a data dir. *)
  Durability_lane.maybe_capture lane ~apply_next:100 ~every:1 ~encode:(fun () -> "snap");
  Alcotest.(check bool) "no capture" true (Durability_lane.take_capture lane = None)

let test_lane_gate_and_release () =
  let metrics = Registry.create () in
  let lane, _ =
    Durability_lane.create ~dir:(fresh_dir ()) ~segment_bytes:4096 ~metrics ()
  in
  Alcotest.(check bool) "enabled" true (Durability_lane.enabled lane);
  (* Group commit on, but never started: appends queue behind the syncer —
     use the inline path instead by appending without a syncer. *)
  let lsn1 = Durability_lane.append lane "r1" in
  Alcotest.(check bool) "real lsn" true (lsn1 > 0);
  (* Inline sync already advanced the watermark, so the gate passes. *)
  let got = ref [] in
  let reply ~client ~rid outcome = got := (client, rid, outcome) :: !got in
  Durability_lane.gate lane ~client:1 ~rid:1 ~lsn:lsn1 Wire.Busy ~reply;
  Alcotest.(check int) "covered lsn replies" 1 (List.length !got);
  (* A reply gated on a future lsn waits for the watermark. *)
  Durability_lane.gate lane ~client:1 ~rid:2 ~lsn:(lsn1 + 5) Wire.Busy ~reply;
  Alcotest.(check int) "future lsn queued" 1 (List.length !got);
  Alcotest.(check bool) "stale watermark is a no-op" false
    (Durability_lane.release_up_to lane ~watermark:lsn1 ~reply);
  Alcotest.(check bool) "watermark releases" true
    (Durability_lane.release_up_to lane ~watermark:(lsn1 + 5) ~reply);
  Alcotest.(check int) "queued reply delivered" 2 (List.length !got);
  Durability_lane.stop lane

let test_lane_capture_cadence () =
  let metrics = Registry.create () in
  let dir = fresh_dir () in
  let lane, _ = Durability_lane.create ~dir ~segment_bytes:4096 ~metrics () in
  Durability_lane.maybe_capture lane ~apply_next:3 ~every:8 ~encode:(fun () -> "early");
  Alcotest.(check bool) "below cadence" true (Durability_lane.take_capture lane = None);
  let lsn = Durability_lane.append lane "r1" in
  Durability_lane.maybe_capture lane ~apply_next:8 ~every:8 ~encode:(fun () -> "snap8");
  (match Durability_lane.take_capture lane with
  | Some (slot, payload, covering_lsn) ->
    Alcotest.(check int) "capture slot" 8 slot;
    Alcotest.(check string) "payload" "snap8" payload;
    Alcotest.(check int) "covering lsn" lsn covering_lsn;
    Durability_lane.install_capture lane ~slot ~payload ~covering_lsn
  | None -> Alcotest.fail "expected a capture at the cadence boundary");
  Alcotest.(check int) "snapshots counted" 1 (Durability_lane.snapshots lane);
  Alcotest.(check bool) "claimed" true (Durability_lane.take_capture lane = None);
  (* One capture per boundary: the cadence pointer moved to slot 8. *)
  Durability_lane.maybe_capture lane ~apply_next:9 ~every:8 ~encode:(fun () -> "again");
  Alcotest.(check bool) "not due again" true (Durability_lane.take_capture lane = None);
  Durability_lane.stop lane;
  (* A fresh lane over the same dir recovers the installed snapshot and
     reports prior state. *)
  let lane2, recovered = Durability_lane.create ~dir ~segment_bytes:4096 ~metrics () in
  Alcotest.(check bool) "had state" true recovered.Durability_lane.had_state;
  (match recovered.Durability_lane.snapshot with
  | Some (slot, payload) ->
    Alcotest.(check int) "recovered slot" 8 slot;
    Alcotest.(check string) "recovered payload" "snap8" payload
  | None -> Alcotest.fail "expected the installed snapshot to recover");
  Durability_lane.stop lane2

(* ------------------------------ catch-up ------------------------------ *)

let batch_of rid = Batch.canonical [ req rid ]

let test_catchup_votes () =
  let cu = Catch_up.create ~n:4 ~t:1 ~cap:4 ~grace:60.0 in
  Alcotest.(check bool) "inactive" false (Catch_up.active cu);
  Alcotest.(check bool) "armed" true (Catch_up.begin_ cu ~now:0.0);
  Alcotest.(check bool) "second arm is a no-op" false (Catch_up.begin_ cu ~now:0.0);
  let b = batch_of 1 in
  let d = Batch.digest b in
  let vote from =
    Catch_up.record_slot_vote cu ~from ~frontier:0 ~slot:0 ~digest:d
      ~provenance:Dex_core.Dex.One_step ~batch:b
  in
  Alcotest.(check bool) "vote accepted" true (vote 1);
  Alcotest.(check bool) "one vote below t+1" true (Catch_up.installable cu ~frontier:0 = None);
  (* Re-votes from the same peer do not advance the count. *)
  Alcotest.(check bool) "revote accepted" true (vote 1);
  Alcotest.(check bool) "revote not counted" true (Catch_up.installable cu ~frontier:0 = None);
  Alcotest.(check bool) "second voter" true (vote 2);
  (match Catch_up.installable cu ~frontier:0 with
  | Some (digest, provenance, batch) ->
    Alcotest.(check bool) "digest" true (digest = d);
    Alcotest.(check bool) "provenance" true (provenance = Dex_core.Dex.One_step);
    Alcotest.(check bool) "content" true (batch = Some b)
  | None -> Alcotest.fail "t+1 votes must install");
  Catch_up.drop_below cu ~frontier:1;
  Alcotest.(check bool) "spent votes dropped" true (Catch_up.installable cu ~frontier:0 = None)

let test_catchup_vote_hygiene () =
  let cu = Catch_up.create ~n:4 ~t:1 ~cap:4 ~grace:60.0 in
  ignore (Catch_up.begin_ cu ~now:0.0);
  let b = batch_of 1 in
  let d = Batch.digest b in
  (* A forged digest is rejected (content must rehash to the claim). *)
  Alcotest.(check bool) "forged digest rejected" false
    (Catch_up.record_slot_vote cu ~from:1 ~frontier:0 ~slot:0 ~digest:(d + 1)
       ~provenance:Dex_core.Dex.One_step ~batch:b);
  (* Votes outside [frontier, frontier + 4*cap) are chaff. *)
  Alcotest.(check bool) "behind frontier rejected" false
    (Catch_up.record_slot_vote cu ~from:1 ~frontier:5 ~slot:4 ~digest:d
       ~provenance:Dex_core.Dex.One_step ~batch:b);
  Alcotest.(check bool) "past window rejected" false
    (Catch_up.record_slot_vote cu ~from:1 ~frontier:0 ~slot:16 ~digest:d
       ~provenance:Dex_core.Dex.One_step ~batch:b);
  (* The empty digest demands the empty batch, and installs as a no-op. *)
  Alcotest.(check bool) "empty digest + content rejected" false
    (Catch_up.record_slot_vote cu ~from:1 ~frontier:0 ~slot:0 ~digest:Batch.empty_digest
       ~provenance:Dex_core.Dex.One_step ~batch:b);
  let empty from =
    Catch_up.record_slot_vote cu ~from ~frontier:0 ~slot:0 ~digest:Batch.empty_digest
      ~provenance:Dex_core.Dex.Underlying ~batch:[]
  in
  ignore (empty 1);
  ignore (empty 2);
  (match Catch_up.installable cu ~frontier:0 with
  | Some (digest, _, batch) ->
    Alcotest.(check bool) "empty installs empty" true
      (digest = Batch.empty_digest && batch = Some [])
  | None -> Alcotest.fail "empty slot must install");
  Catch_up.finish cu;
  Alcotest.(check bool) "finish disarms" false (Catch_up.active cu);
  Alcotest.(check bool) "votes ignored while inactive" false
    (Catch_up.record_slot_vote cu ~from:1 ~frontier:0 ~slot:0 ~digest:d
       ~provenance:Dex_core.Dex.One_step ~batch:b)

let test_catchup_done () =
  let cu = Catch_up.create ~n:4 ~t:1 ~cap:4 ~grace:10.0 in
  ignore (Catch_up.begin_ cu ~now:0.0);
  Alcotest.(check bool) "not satisfied yet" false (Catch_up.satisfied cu ~now:1.0 ~frontier:5);
  (* n - 1 - t = 2 peers must confirm a frontier we have reached. *)
  Catch_up.note_frontier cu ~peer:1 3;
  Catch_up.note_frontier cu ~peer:2 9;
  Alcotest.(check bool) "peer ahead of us does not count" false
    (Catch_up.satisfied cu ~now:1.0 ~frontier:5);
  Catch_up.note_frontier cu ~peer:2 4;
  (* note_frontier keeps the max per peer: 9 still stands for peer 2. *)
  Alcotest.(check bool) "frontier reports are max-merged" false
    (Catch_up.satisfied cu ~now:1.0 ~frontier:5);
  Alcotest.(check bool) "reached the reports" true (Catch_up.satisfied cu ~now:1.0 ~frontier:9);
  (* Grace deadline: progress over completeness. *)
  Alcotest.(check bool) "grace deadline satisfies" true
    (Catch_up.satisfied cu ~now:10.5 ~frontier:0)

let test_catchup_snap_votes () =
  let cu = Catch_up.create ~n:4 ~t:1 ~cap:4 ~grace:60.0 in
  ignore (Catch_up.begin_ cu ~now:0.0);
  let validate p = p <> "bogus" in
  let vote from payload =
    Catch_up.record_snap_vote cu ~from ~frontier:2 ~slot:10 ~payload ~validate
  in
  Alcotest.(check bool) "invalid payload rejected" true (vote 1 "bogus" = None);
  Alcotest.(check bool) "behind frontier rejected" true
    (Catch_up.record_snap_vote cu ~from:1 ~frontier:10 ~slot:10 ~payload:"snap" ~validate
    = None);
  Alcotest.(check bool) "first vote waits" true (vote 1 "snap" = None);
  (* A different payload for the same slot accumulates separately — only
     byte-identical payloads share votes. *)
  Alcotest.(check bool) "divergent payload waits" true (vote 2 "other" = None);
  Alcotest.(check bool) "t+1 identical installs" true (vote 3 "snap" = Some (10, "snap"))

let () =
  Alcotest.run "dex_pipeline"
    [
      ( "admission",
        [
          Alcotest.test_case "verdicts" `Quick test_admission_verdicts;
          Alcotest.test_case "oldest invariant" `Quick test_admission_oldest;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "cut: settle exclusion" `Quick test_cut_settle_exclusion;
          Alcotest.test_case "cut: cap truncation" `Quick test_cut_cap_truncation;
          Alcotest.test_case "cut: oldest re-arms" `Quick test_cut_rearms_oldest;
          Alcotest.test_case "tick: fire" `Quick test_tick_fire;
          Alcotest.test_case "tick: stall watchdog" `Quick test_tick_watchdog;
        ] );
      ( "durability-lane",
        [
          Alcotest.test_case "inert without dir" `Quick test_lane_inert;
          Alcotest.test_case "gate and release" `Quick test_lane_gate_and_release;
          Alcotest.test_case "capture cadence + recovery" `Quick test_lane_capture_cadence;
        ] );
      ( "catch-up",
        [
          Alcotest.test_case "t+1 slot votes" `Quick test_catchup_votes;
          Alcotest.test_case "vote hygiene" `Quick test_catchup_vote_hygiene;
          Alcotest.test_case "completion" `Quick test_catchup_done;
          Alcotest.test_case "t+1 snapshot votes" `Quick test_catchup_snap_votes;
        ] );
    ]
