(* Tests for dex_broadcast: IDB (Figure 3 / Theorem 4), Bracha reliable
   broadcast, BV-broadcast. Protocols are run end-to-end in the simulator;
   Byzantine senders equivocate at the network level exactly as in the
   paper's Figure 2 scenario. *)

open Dex_net
open Dex_broadcast

(* ------------------------------------------------------------------ *)
(* IDB harness: every process Id-sends its value and records deliveries.
   Delivery records live outside the instances so tests can inspect them. *)

type idb_record = { deliveries : (Pid.t * (Pid.t * int)) list ref }

let idb_correct ~n ~t ~me ~value ~record =
  let idb = Idb.create ~n ~t in
  let handle ~from m =
    let emit = Idb.handle idb ~from m in
    List.iter (fun d -> record.deliveries := (me, d) :: !(record.deliveries)) emit.Idb.deliveries;
    List.concat_map (fun b -> Protocol.broadcast ~n b) emit.Idb.broadcasts
  in
  {
    Protocol.start = (fun () -> Protocol.broadcast ~n (Idb.id_send value));
    on_message = (fun ~now:_ ~from m -> handle ~from m);
  }

(* A Byzantine IDB sender: sends Init(split dst) to each process — the
   Figure 2 attack — then echoes honestly. *)
let idb_equivocator ~n ~t ~split =
  let idb = Idb.create ~n ~t in
  {
    Protocol.start =
      (fun () -> List.map (fun dst -> Protocol.send dst (Idb.Init (split dst))) (Pid.all ~n));
    on_message =
      (fun ~now:_ ~from m ->
        let emit = Idb.handle idb ~from m in
        List.concat_map (fun b -> Protocol.broadcast ~n b) emit.Idb.broadcasts);
  }

let run_idb ?(n = 9) ?(discipline = Discipline.asynchronous) ?(seed = 1)
    ?(policy = Runner.Fifo) ~make () =
  let record = { deliveries = ref [] } in
  let r = Runner.run (Runner.config ~discipline ~seed ~policy ~n (make record)) in
  (record, r)

let deliveries_at record ~receiver =
  List.filter_map
    (fun (rcv, d) -> if rcv = receiver then Some d else None)
    !(record.deliveries)

let test_idb_all_correct_delivery () =
  let n = 9 and t = 2 in
  let record, r =
    run_idb ~n ~make:(fun record p -> idb_correct ~n ~t ~me:p ~value:(100 + p) ~record) ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  (* Termination: every process Id-Receives from every sender. *)
  for receiver = 0 to n - 1 do
    let ds = deliveries_at record ~receiver in
    Alcotest.(check int) (Printf.sprintf "receiver %d gets n deliveries" receiver) n
      (List.length ds);
    (* Validity: delivered value is what the sender Id-Sent. *)
    List.iter
      (fun (origin, v) -> Alcotest.(check int) "validity" (100 + origin) v)
      ds
  done

let test_idb_at_most_one_delivery_per_origin () =
  let n = 9 and t = 2 in
  let record, _ =
    run_idb ~n ~make:(fun record p -> idb_correct ~n ~t ~me:p ~value:p ~record) ()
  in
  for receiver = 0 to n - 1 do
    let origins = List.map fst (deliveries_at record ~receiver) in
    Alcotest.(check int) "no duplicate origins" (List.length origins)
      (List.length (List.sort_uniq compare origins))
  done

(* The central IDB property: agreement for a Byzantine sender (Figure 2). *)
let test_idb_agreement_under_equivocation () =
  let n = 9 and t = 2 in
  (* Try many schedules: agreement must hold in all of them. *)
  for seed = 1 to 25 do
    let record, _ =
      run_idb ~n ~seed
        ~make:(fun record p ->
          if p = 0 then idb_equivocator ~n ~t ~split:(fun dst -> if dst < n / 2 then 111 else 222)
          else idb_correct ~n ~t ~me:p ~value:p ~record)
        ()
    in
    (* Collect what each correct process delivered for origin 0. *)
    let for_origin_0 =
      List.filter_map
        (fun (rcv, (origin, v)) -> if origin = 0 && rcv <> 0 then Some v else None)
        !(record.deliveries)
    in
    let distinct = List.sort_uniq compare for_origin_0 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: all deliveries for the equivocator agree" seed)
      true
      (List.length distinct <= 1)
  done

let test_idb_silent_sender_no_delivery () =
  let n = 9 and t = 2 in
  let record, r =
    run_idb ~n
      ~make:(fun record p ->
        if p = 0 then Adversary.silent ()
        else idb_correct ~n ~t ~me:p ~value:p ~record)
      ()
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  let for_origin_0 = List.filter (fun (_, (origin, _)) -> origin = 0) !(record.deliveries) in
  Alcotest.(check int) "nobody delivers for silent sender" 0 (List.length for_origin_0);
  (* But correct senders still go through. *)
  let for_origin_1 =
    List.filter (fun (rcv, (origin, _)) -> origin = 1 && rcv <> 0) !(record.deliveries)
  in
  Alcotest.(check int) "correct senders delivered" (n - 1) (List.length for_origin_1)

let test_idb_cost_two_steps () =
  (* Under lockstep, an IDB delivery happens at depth 2 (init then echo):
     "a single communication step of the identical broadcast is realized by
     two communication steps" (§4). We measure via a decide-on-delivery
     protocol. *)
  let n = 9 and t = 2 in
  let make _record p =
    let idb = Idb.create ~n ~t in
    let decided = ref false in
    {
      Protocol.start = (fun () -> Protocol.broadcast ~n (Idb.id_send (100 + p)));
      on_message =
        (fun ~now:_ ~from m ->
          let emit = Idb.handle idb ~from m in
          let echoes = List.concat_map (fun b -> Protocol.broadcast ~n b) emit.Idb.broadcasts in
          match emit.Idb.deliveries with
          | (_, v) :: _ when not !decided ->
            decided := true;
            echoes @ [ Protocol.decide ~tag:"first-idb-delivery" v ]
          | _ -> echoes);
    }
  in
  let record = { deliveries = ref [] } in
  let r = Runner.run (Runner.config ~discipline:Discipline.lockstep ~n (make record)) in
  Array.iter
    (function
      | Some d -> Alcotest.(check int) "IDB delivery at depth 2" 2 d.Runner.depth
      | None -> Alcotest.fail "no delivery")
    r.Runner.decisions

let test_idb_no_totality () =
  (* IDB does NOT guarantee totality for Byzantine senders — the property
     Bracha pays its third wave for. Crafted schedule, n = 5, t = 1:
     the Byzantine p0 inits value 111 at p1..p3 but 222 at p4 (so p4's
     first-echo slot for origin 0 is burnt on 222), then sends its own echo
     of 111 to p1 only. p1 reaches n - t = 4 echoes and delivers; p2..p4
     top out at 3 and never can — amplification is blocked because every
     correct process has already echoed something for origin 0. This is why
     DEX's J2 waits for n - t per-sender deliveries rather than relying on
     any totality of the broadcast layer. *)
  let n = 5 and t = 1 in
  let record = { deliveries = ref [] } in
  let byz =
    {
      Protocol.start =
        (fun () ->
          [
            Protocol.send 1 (Idb.Init 111);
            Protocol.send 2 (Idb.Init 111);
            Protocol.send 3 (Idb.Init 111);
            Protocol.send 4 (Idb.Init 222);
            Protocol.send 1 (Idb.Echo { origin = 0; payload = 111 });
          ]);
      on_message = (fun ~now:_ ~from:_ _ -> []);
    }
  in
  let make p = if p = 0 then byz else idb_correct ~n ~t ~me:p ~value:p ~record in
  let r = Runner.run (Runner.config ~discipline:Discipline.lockstep ~n make) in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  let receivers_for_0 =
    List.filter_map
      (fun (rcv, (origin, v)) -> if origin = 0 then Some (rcv, v) else None)
      !(record.deliveries)
  in
  Alcotest.(check (list (pair int int))) "only the victim delivers" [ (1, 111) ]
    receivers_for_0;
  (* Agreement still holds vacuously (a single delivery), and all correct
     senders' broadcasts went through everywhere. *)
  List.iter
    (fun origin ->
      let count =
        List.length (List.filter (fun (_, (o, _)) -> o = origin) !(record.deliveries))
      in
      Alcotest.(check int) (Printf.sprintf "origin %d delivered at all correct" origin) 4 count)
    [ 1; 2; 3; 4 ]

let test_idb_create_validation () =
  Alcotest.check_raises "n <= 4t" (Invalid_argument "Idb.create: requires n > 4t and t >= 0")
    (fun () -> ignore (Idb.create ~n:8 ~t:2))

let test_idb_state_queries () =
  let idb = Idb.create ~n:5 ~t:1 in
  Alcotest.(check bool) "no echo yet" false (Idb.echo_sent idb ~origin:3);
  let emit = Idb.handle idb ~from:3 (Idb.Init 42) in
  Alcotest.(check int) "one echo emitted" 1 (List.length emit.Idb.broadcasts);
  Alcotest.(check bool) "echo recorded" true (Idb.echo_sent idb ~origin:3);
  Alcotest.(check bool) "nothing delivered yet" true (Idb.delivered idb ~origin:3 = None);
  (* Second init from the same origin: no second echo (first-echo). *)
  let emit2 = Idb.handle idb ~from:3 (Idb.Init 43) in
  Alcotest.(check int) "no second echo" 0 (List.length emit2.Idb.broadcasts)

let test_idb_delivery_threshold () =
  (* n = 5, t = 1: delivery needs n - t = 4 echoes; amplification at
     n - 2t = 3. *)
  let idb = Idb.create ~n:5 ~t:1 in
  let feed from = Idb.handle idb ~from (Idb.Echo { origin = 4; payload = 9 }) in
  ignore (feed 0);
  ignore (feed 1);
  (* Third echo triggers amplification (this process joins the witnesses). *)
  let e3 = feed 2 in
  Alcotest.(check int) "amplified echo" 1 (List.length e3.Idb.broadcasts);
  Alcotest.(check bool) "not yet delivered" true (Idb.delivered idb ~origin:4 = None);
  let e4 = feed 3 in
  Alcotest.(check (list (pair int int))) "delivered at 4 echoes" [ (4, 9) ] e4.Idb.deliveries

let test_idb_duplicate_echo_ignored () =
  let idb = Idb.create ~n:5 ~t:1 in
  let feed () = Idb.handle idb ~from:0 (Idb.Echo { origin = 4; payload = 9 }) in
  ignore (feed ());
  ignore (feed ());
  ignore (feed ());
  ignore (feed ());
  Alcotest.(check bool) "duplicates don't deliver" true (Idb.delivered idb ~origin:4 = None)

(* ------------------------------------------------------------------ *)
(* Bracha RB *)

let bracha_correct ~n ~t ~me ~value ~record =
  let rb = Bracha.create ~n ~t in
  {
    Protocol.start = (fun () -> Protocol.broadcast ~n (Bracha.rb_send value));
    on_message =
      (fun ~now:_ ~from m ->
        let emit = Bracha.handle rb ~from m in
        List.iter
          (fun d -> record.deliveries := (me, d) :: !(record.deliveries))
          emit.Bracha.deliveries;
        List.concat_map (fun b -> Protocol.broadcast ~n b) emit.Bracha.broadcasts);
  }

let test_bracha_all_correct () =
  let n = 7 and t = 2 in
  let record = { deliveries = ref [] } in
  let r =
    Runner.run
      (Runner.config ~discipline:Discipline.asynchronous ~seed:3 ~n (fun p ->
           bracha_correct ~n ~t ~me:p ~value:(200 + p) ~record))
  in
  Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
  for receiver = 0 to n - 1 do
    let ds = deliveries_at record ~receiver in
    Alcotest.(check int) "n deliveries" n (List.length ds);
    List.iter (fun (origin, v) -> Alcotest.(check int) "validity" (200 + origin) v) ds
  done

let test_bracha_agreement_under_equivocation () =
  let n = 7 and t = 2 in
  for seed = 1 to 25 do
    let record = { deliveries = ref [] } in
    let make p =
      if p = 0 then
        {
          Protocol.start =
            (fun () ->
              List.map
                (fun dst -> Protocol.send dst (Bracha.Initial (if dst mod 2 = 0 then 5 else 6)))
                (Pid.all ~n));
          on_message = (fun ~now:_ ~from:_ _ -> []);
        }
      else bracha_correct ~n ~t ~me:p ~value:p ~record
    in
    let _ = Runner.run (Runner.config ~discipline:Discipline.asynchronous ~seed ~n make) in
    let for_0 =
      List.filter_map
        (fun (rcv, (origin, v)) -> if origin = 0 && rcv <> 0 then Some v else None)
        !(record.deliveries)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d agreement" seed)
      true
      (List.length (List.sort_uniq compare for_0) <= 1)
  done

let test_bracha_totality () =
  (* If one correct process delivers for a (faulty) origin, all do.
     The equivocator sends Initial only to a strict subset; whether delivery
     happens at all depends on thresholds, but totality must hold. *)
  let n = 7 and t = 2 in
  for seed = 1 to 25 do
    let record = { deliveries = ref [] } in
    let make p =
      if p = 0 then
        {
          Protocol.start =
            (fun () ->
              List.filter_map
                (fun dst -> if dst <= 4 then Some (Protocol.send dst (Bracha.Initial 77)) else None)
                (Pid.all ~n));
          on_message = (fun ~now:_ ~from:_ _ -> []);
        }
      else bracha_correct ~n ~t ~me:p ~value:p ~record
    in
    let _ = Runner.run (Runner.config ~discipline:Discipline.asynchronous ~seed ~n make) in
    let receivers_for_0 =
      List.sort_uniq compare
        (List.filter_map
           (fun (rcv, (origin, _)) -> if origin = 0 && rcv <> 0 then Some rcv else None)
           !(record.deliveries))
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d totality" seed)
      true
      (receivers_for_0 = [] || List.length receivers_for_0 = n - 1)
  done

let test_bracha_create_validation () =
  Alcotest.check_raises "n <= 3t" (Invalid_argument "Bracha.create: requires n > 3t and t >= 0")
    (fun () -> ignore (Bracha.create ~n:6 ~t:2))

(* ------------------------------------------------------------------ *)
(* BV-broadcast *)

let test_bv_validation () =
  Alcotest.check_raises "n <= 3t" (Invalid_argument "Bv.create: requires n > 3t and t >= 0")
    (fun () -> ignore (Bv.create ~n:3 ~t:1))

let test_bv_bit_conversions () =
  Alcotest.(check bool) "one" true (Bv.bool_of_bit (Bv.bit_of_bool true));
  Alcotest.(check bool) "zero" false (Bv.bool_of_bit (Bv.bit_of_bool false))

let test_bv_thresholds () =
  (* n = 4, t = 1: support t+1 = 2 re-broadcasts, accept 2t+1 = 3 adds. *)
  let bv = Bv.create ~n:4 ~t:1 in
  let e0 = Bv.handle bv ~from:0 (Bv.Bval Bv.One) in
  Alcotest.(check int) "no echo at 1 sender" 0 (List.length e0.Bv.broadcasts);
  let e1 = Bv.handle bv ~from:1 (Bv.Bval Bv.One) in
  Alcotest.(check int) "echo at t+1 senders" 1 (List.length e1.Bv.broadcasts);
  Alcotest.(check (list bool)) "not in bin yet" [] (List.map Bv.bool_of_bit (Bv.bin_values bv));
  let e2 = Bv.handle bv ~from:2 (Bv.Bval Bv.One) in
  Alcotest.(check (list bool)) "added at 2t+1" [ true ] (List.map Bv.bool_of_bit e2.Bv.added);
  Alcotest.(check bool) "mem" true (Bv.mem bv Bv.One)

let test_bv_duplicate_senders_ignored () =
  let bv = Bv.create ~n:4 ~t:1 in
  ignore (Bv.handle bv ~from:0 (Bv.Bval Bv.One));
  ignore (Bv.handle bv ~from:0 (Bv.Bval Bv.One));
  ignore (Bv.handle bv ~from:0 (Bv.Bval Bv.One));
  Alcotest.(check bool) "one sender can't force bin_values" false (Bv.mem bv Bv.One)

let test_bv_own_broadcast_idempotent () =
  let bv = Bv.create ~n:4 ~t:1 in
  let e1 = Bv.bv_broadcast bv Bv.One in
  let e2 = Bv.bv_broadcast bv Bv.One in
  Alcotest.(check int) "first broadcasts" 1 (List.length e1.Bv.broadcasts);
  Alcotest.(check int) "second is no-op" 0 (List.length e2.Bv.broadcasts)

let test_bv_uniformity_in_sim () =
  (* All correct processes BV-broadcast bits; bin_values converge to the
     same set everywhere. *)
  let n = 7 and t = 2 in
  for seed = 1 to 10 do
    let states = Array.init n (fun _ -> Bv.create ~n ~t) in
    let make p =
      let bv = states.(p) in
      let bit = if p mod 2 = 0 then Bv.Zero else Bv.One in
      {
        Protocol.start =
          (fun () ->
            let e = Bv.bv_broadcast bv bit in
            List.concat_map (fun m -> Protocol.broadcast ~n m) e.Bv.broadcasts);
        on_message =
          (fun ~now:_ ~from m ->
            let e = Bv.handle bv ~from m in
            List.concat_map (fun m' -> Protocol.broadcast ~n m') e.Bv.broadcasts);
      }
    in
    let r = Runner.run (Runner.config ~discipline:Discipline.asynchronous ~seed ~n make) in
    Alcotest.(check bool) "quiescent" true (r.Runner.stop = Dex_sim.Engine.Quiescent);
    let sets =
      Array.to_list (Array.map (fun bv -> List.sort compare (Bv.bin_values bv)) states)
      |> List.sort_uniq compare
    in
    Alcotest.(check int) (Printf.sprintf "seed %d uniform bin_values" seed) 1 (List.length sets)
  done

(* Property: IDB agreement per sender for {e every} enumerable adversary in
   lib/net/adversary.ml applied to the sending slot, across 200 seeded
   schedules (async latencies + random same-instant tiebreak). Correct
   senders must additionally reach every correct receiver with their own
   value (termination + validity). *)
let test_idb_agreement_under_every_adversary () =
  let n = 5 and t = 1 in
  let choices = Adversary.choices ~n ~max_crash_budget:3 in
  let seeds_per_choice = (200 + List.length choices - 1) / List.length choices in
  let runs = ref 0 in
  List.iter
    (fun choice ->
      for seed = 1 to seeds_per_choice do
        incr runs;
        let record, _ =
          run_idb ~n ~discipline:Discipline.asynchronous ~seed
            ~policy:Runner.Random_tiebreak
            ~make:(fun record p ->
              let correct = idb_correct ~n ~t ~me:p ~value:(100 + p) ~record in
              if p = 0 then Adversary.apply choice correct else correct)
            ()
        in
        let ctx =
          Format.asprintf "%a seed %d" Adversary.pp_choice choice seed
        in
        for origin = 0 to n - 1 do
          (* Values correct receivers Id-Received for this origin. *)
          let received =
            List.filter_map
              (fun receiver ->
                List.assoc_opt origin (deliveries_at record ~receiver))
              [ 1; 2; 3; 4 ]
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: agreement on origin %d" ctx origin)
            true
            (List.length (List.sort_uniq compare received) <= 1);
          if origin <> 0 then
            (* The sender is correct: all four correct receivers deliver
               its value. *)
            Alcotest.(check (list int))
              (Printf.sprintf "%s: origin %d reaches all" ctx origin)
              [ 100 + origin; 100 + origin; 100 + origin; 100 + origin ]
              received
        done
      done)
    choices;
  Alcotest.(check bool) "at least 200 schedules" true (!runs >= 200)

let () =
  Alcotest.run "dex_broadcast"
    [
      ( "idb",
        [
          Alcotest.test_case "all-correct delivery" `Quick test_idb_all_correct_delivery;
          Alcotest.test_case "at most one delivery/origin" `Quick
            test_idb_at_most_one_delivery_per_origin;
          Alcotest.test_case "agreement under equivocation" `Quick
            test_idb_agreement_under_equivocation;
          Alcotest.test_case "silent sender" `Quick test_idb_silent_sender_no_delivery;
          Alcotest.test_case "costs two steps" `Quick test_idb_cost_two_steps;
          Alcotest.test_case "no totality (by design)" `Quick test_idb_no_totality;
          Alcotest.test_case "create validation" `Quick test_idb_create_validation;
          Alcotest.test_case "state queries" `Quick test_idb_state_queries;
          Alcotest.test_case "delivery threshold" `Quick test_idb_delivery_threshold;
          Alcotest.test_case "duplicate echo ignored" `Quick test_idb_duplicate_echo_ignored;
          Alcotest.test_case "agreement under every adversary" `Quick
            test_idb_agreement_under_every_adversary;
        ] );
      ( "bracha",
        [
          Alcotest.test_case "all-correct delivery" `Quick test_bracha_all_correct;
          Alcotest.test_case "agreement under equivocation" `Quick
            test_bracha_agreement_under_equivocation;
          Alcotest.test_case "totality" `Quick test_bracha_totality;
          Alcotest.test_case "create validation" `Quick test_bracha_create_validation;
        ] );
      ( "bv",
        [
          Alcotest.test_case "create validation" `Quick test_bv_validation;
          Alcotest.test_case "bit conversions" `Quick test_bv_bit_conversions;
          Alcotest.test_case "thresholds" `Quick test_bv_thresholds;
          Alcotest.test_case "duplicate senders ignored" `Quick test_bv_duplicate_senders_ignored;
          Alcotest.test_case "own broadcast idempotent" `Quick test_bv_own_broadcast_idempotent;
          Alcotest.test_case "uniformity" `Quick test_bv_uniformity_in_sim;
        ] );
    ]
