(* Tests for dex_condition: conditions, sequences, pairs, and mechanical
   verification of the paper's Theorems 1 and 2 (legality of P_freq and
   P_prv) over small universes. *)

open Dex_vector
open Dex_condition

let iv = Input_vector.of_list

let test_freq_condition () =
  let c = Condition.freq ~d:2 in
  Alcotest.(check bool) "margin 3 > 2" true (Condition.mem (iv [ 1; 1; 1; 1; 2 ]) c);
  Alcotest.(check bool) "margin 2 not > 2" false (Condition.mem (iv [ 1; 1; 1; 2 ]) c);
  Alcotest.(check bool) "unanimous margin n" true (Condition.mem (iv [ 5; 5; 5 ]) c)

let test_privileged_condition () =
  let c = Condition.privileged ~m:7 ~d:2 in
  Alcotest.(check bool) "three m's" true (Condition.mem (iv [ 7; 7; 7; 0 ]) c);
  Alcotest.(check bool) "two m's" false (Condition.mem (iv [ 7; 7; 0; 0 ]) c);
  Alcotest.(check bool) "m absent" false (Condition.mem (iv [ 1; 2; 3; 4 ]) c)

let test_set_operations () =
  let a = Condition.freq ~d:1 and b = Condition.privileged ~m:1 ~d:1 in
  let i = iv [ 1; 1; 1; 2 ] in
  Alcotest.(check bool) "inter" true (Condition.mem i (Condition.inter a b));
  Alcotest.(check bool) "union" true (Condition.mem i (Condition.union a Condition.empty));
  Alcotest.(check bool) "empty" false (Condition.mem i Condition.empty);
  Alcotest.(check bool) "trivial" true (Condition.mem i Condition.trivial)

let test_subset () =
  let narrow = Condition.freq ~d:3 and wide = Condition.freq ~d:1 in
  Alcotest.(check bool) "freq_3 ⊆ freq_1" true
    (Condition.subset ~universe:[ 0; 1 ] ~n:5 narrow wide);
  Alcotest.(check bool) "freq_1 ⊄ freq_3" false
    (Condition.subset ~universe:[ 0; 1 ] ~n:5 wide narrow)

let test_sequence_level () =
  (* Frequency sequence with t = 2: C_k = C^freq_{2k} for this test. *)
  let s = Sequence.make ~t:2 (fun k -> Condition.freq ~d:(2 * k)) in
  Alcotest.(check int) "bound" 2 (Sequence.bound s);
  (* margin 5 input: in C_0 (d=0), C_1 (d=2), C_2 (d=4). *)
  Alcotest.(check (option int)) "level margin 5" (Some 2) (Sequence.level s (iv [ 1; 1; 1; 1; 1 ]));
  (* margin 3: in C_0, C_1, not C_2. *)
  Alcotest.(check (option int)) "level margin 3" (Some 1)
    (Sequence.level s (iv [ 1; 1; 1; 1; 2 ]));
  (* margin 1: in C_0 only. *)
  Alcotest.(check (option int)) "level margin 1" (Some 0)
    (Sequence.level s (iv [ 1; 1; 1; 2; 2 ]));
  (* margin 0 (tie): not even in C_0. *)
  Alcotest.(check (option int)) "tie not in C_0" None
    (Sequence.level s (iv [ 1; 1; 2; 2 ]))

let test_sequence_monotone () =
  let s = Sequence.make ~t:2 (fun k -> Condition.freq ~d:(2 * k)) in
  Alcotest.(check bool) "decreasing" true (Sequence.is_monotone ~universe:[ 0; 1 ] ~n:4 s)

let test_sequence_invalid () =
  Alcotest.check_raises "negative t" (Invalid_argument "Sequence.make: negative failure bound")
    (fun () -> ignore (Sequence.make ~t:(-1) (fun _ -> Condition.trivial)))

let test_freq_pair_construction () =
  let pair = Pair.freq ~n:7 ~t:1 in
  Alcotest.(check string) "name" "P_freq" pair.Pair.name;
  Alcotest.(check int) "n" 7 pair.Pair.n;
  Alcotest.(check int) "t" 1 pair.Pair.t

let test_freq_pair_assumption () =
  (* n > 6t required: n = 6, t = 1 must be rejected. *)
  (match Pair.freq ~n:6 ~t:1 with
  | exception Pair.Assumption_violated _ -> ()
  | _ -> Alcotest.fail "expected Assumption_violated");
  (* n = 7, t = 1 accepted. *)
  ignore (Pair.freq ~n:7 ~t:1)

let test_prv_pair_assumption () =
  (match Pair.privileged ~n:5 ~t:1 ~m:1 with
  | exception Pair.Assumption_violated _ -> ()
  | _ -> Alcotest.fail "expected Assumption_violated");
  ignore (Pair.privileged ~n:6 ~t:1 ~m:1)

let test_freq_predicates () =
  let pair = Pair.freq ~n:7 ~t:1 in
  let stats_of l = View.stats (Input_vector.to_view (iv l)) in
  (* P1: margin > 4t = 4. Unanimous view of 7 entries: margin 7. *)
  let unanimous = View.stats (Input_vector.to_view (Input_vector.make 7 3)) in
  Alcotest.(check bool) "P1 unanimous" true (pair.Pair.p1 unanimous);
  Alcotest.(check bool) "P2 unanimous" true (pair.Pair.p2 unanimous);
  Alcotest.(check int) "F unanimous" 3 (pair.Pair.f unanimous);
  (* margin 6-1 = 5 > 4 : P1 holds. *)
  let j5 = stats_of [ 3; 3; 3; 3; 3; 3; 0 ] in
  Alcotest.(check bool) "P1 margin 5" true (pair.Pair.p1 j5);
  (* margin 5-2 = 3: P1 fails, P2 (> 2) holds. *)
  let j3 = stats_of [ 3; 3; 3; 3; 3; 0; 0 ] in
  Alcotest.(check bool) "P1 margin 3" false (pair.Pair.p1 j3);
  Alcotest.(check bool) "P2 margin 3" true (pair.Pair.p2 j3);
  (* margin 4-3 = 1: both fail. *)
  let j1 = stats_of [ 3; 3; 3; 3; 0; 0; 0 ] in
  Alcotest.(check bool) "P1 margin 1" false (pair.Pair.p1 j1);
  Alcotest.(check bool) "P2 margin 1" false (pair.Pair.p2 j1);
  Alcotest.(check int) "F picks 1st" 3 (pair.Pair.f j1)

let test_prv_predicates () =
  let m = 9 in
  let pair = Pair.privileged ~n:6 ~t:1 ~m in
  let stats_of l = View.stats (Input_vector.to_view (iv l)) in
  (* P1: #m > 3t = 3. *)
  let j4 = stats_of [ 9; 9; 9; 9; 0; 1 ] in
  Alcotest.(check bool) "P1 with 4 m's" true (pair.Pair.p1 j4);
  let j3 = stats_of [ 9; 9; 9; 0; 0; 1 ] in
  Alcotest.(check bool) "P1 with 3 m's" false (pair.Pair.p1 j3);
  Alcotest.(check bool) "P2 with 3 m's" true (pair.Pair.p2 j3);
  (* F: m when #m > t, else most frequent. *)
  Alcotest.(check int) "F = m with 3 m's" m (pair.Pair.f j3);
  let j_no_m = stats_of [ 0; 0; 0; 1; 1; 2 ] in
  Alcotest.(check int) "F falls back to 1st" 0 (pair.Pair.f j_no_m);
  (* #m = 1 = t: not privileged enough, fall back. *)
  let j1m = stats_of [ 9; 0; 0; 0; 1; 1 ] in
  Alcotest.(check int) "F ignores weak m" 0 (pair.Pair.f j1m)

let test_one_step_level_freq () =
  let pair = Pair.freq ~n:7 ~t:1 in
  (* C¹_k = C^freq_{4+2k}: unanimous (margin 7) is in C¹_1 (d=6) and C¹_0. *)
  Alcotest.(check (option int)) "unanimous level 1" (Some 1)
    (Pair.one_step_level pair (Input_vector.make 7 1));
  (* margin 5 input (6 vs 1): in C¹_0 (d=4) but not C¹_1 (d=6). *)
  Alcotest.(check (option int)) "margin 5 level 0" (Some 0)
    (Pair.one_step_level pair (iv [ 1; 1; 1; 1; 1; 1; 0 ]));
  (* margin 3: not in C¹_0. *)
  Alcotest.(check (option int)) "margin 3 none" None
    (Pair.one_step_level pair (iv [ 1; 1; 1; 1; 1; 0; 0 ]));
  (* ... but margin 3 is in C²_0 (d=2). *)
  Alcotest.(check (option int)) "margin 3 two-step level 0" (Some 0)
    (Pair.two_step_level pair (iv [ 1; 1; 1; 1; 1; 0; 0 ]))

let test_views_enumeration () =
  (* V^3_1 over {0,1}: views with <= 1 bottom. 2^3 + 3·2^2 = 20. *)
  let vs = Legality.views ~universe:[ 0; 1 ] ~n:3 ~max_bottoms:1 in
  Alcotest.(check int) "count" 20 (List.length vs);
  List.iter
    (fun j ->
      Alcotest.(check bool) "≤1 bottom" true (View.dim j - View.filled j <= 1))
    vs

(* d-legality of the building-block conditions ("[C^freq_d / C^prv_d]
   belongs to d-legal conditions [10]"). *)

let test_freq_is_d_legal () =
  List.iter
    (fun (n, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "C^freq_%d d-legal at n=%d" d n)
        true
        (D_legal.is_d_legal ~universe:[ 0; 1 ] ~n ~d (Condition.freq ~d)))
    [ (4, 1); (5, 1); (5, 2); (6, 2) ]

let test_prv_is_d_legal () =
  List.iter
    (fun (n, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "C^prv_%d d-legal at n=%d" d n)
        true
        (D_legal.is_d_legal ~universe:[ 0; 1 ] ~n ~d (Condition.privileged ~m:1 ~d)))
    [ (4, 1); (5, 1); (5, 2); (6, 2) ]

let test_trivial_not_d_legal () =
  (* The full space is famously not 1-legal: ⟨0,0,1⟩ and ⟨0,1,1⟩ are at
     distance 1 but share no value occurring twice in both... they do share
     0 and 1 patterns; the checker works out the whole component. *)
  let verdict = D_legal.check ~universe:[ 0; 1 ] ~n:3 ~d:1 Condition.trivial in
  Alcotest.(check int) "one component" 1 verdict.D_legal.components;
  Alcotest.(check bool) "not 1-legal" false verdict.D_legal.legal

let test_d0_always_legal () =
  Alcotest.(check bool) "0-legal" true
    (D_legal.is_d_legal ~universe:[ 0; 1 ] ~n:3 ~d:0 Condition.trivial)

let test_empty_condition_vacuously_legal () =
  Alcotest.(check bool) "empty legal" true
    (D_legal.is_d_legal ~universe:[ 0; 1 ] ~n:3 ~d:1 Condition.empty)

let test_witness_values_acceptable () =
  let verdict = D_legal.check ~universe:[ 0; 1 ] ~n:5 ~d:1 (Condition.freq ~d:1) in
  Alcotest.(check bool) "legal" true verdict.D_legal.legal;
  List.iter
    (fun (input, v) ->
      Alcotest.(check bool) "witness occurs > d times" true
        (Input_vector.occurrences input v > 1))
    verdict.D_legal.witness

(* The centerpiece: mechanical verification of Theorems 1 and 2. *)

let test_theorem1_freq_legal () =
  let pair = Pair.freq ~n:7 ~t:1 in
  let violations = Legality.check ~universe:[ 0; 1 ] pair in
  List.iter (fun v -> Format.printf "%a@." Legality.pp_violation v) violations;
  Alcotest.(check int) "P_freq legal over {0,1}^7, t=1" 0 (List.length violations)

let test_theorem2_prv_legal () =
  let pair = Pair.privileged ~n:6 ~t:1 ~m:1 in
  let violations = Legality.check ~universe:[ 0; 1 ] pair in
  List.iter (fun v -> Format.printf "%a@." Legality.pp_violation v) violations;
  Alcotest.(check int) "P_prv legal over {0,1}^6, t=1" 0 (List.length violations)

let test_theorem2_prv_legal_three_values () =
  let pair = Pair.privileged ~n:6 ~t:1 ~m:2 in
  Alcotest.(check bool) "P_prv legal over {0,1,2}^6, t=1" true
    (Legality.is_legal ~universe:[ 0; 1; 2 ] pair)

let test_illegal_pair_detected () =
  (* Sabotage P_freq by weakening P1 to the P2 threshold: LA3 must break
     because two one-step deciders can now disagree. *)
  let good = Pair.freq ~n:7 ~t:1 in
  let bad = { good with Pair.p1 = good.Pair.p2; name = "P_freq_broken" } in
  let violations = Legality.check ~max_violations:5 ~universe:[ 0; 1 ] bad in
  Alcotest.(check bool) "violations found" true (violations <> []);
  Alcotest.(check bool) "an LA3 violation is reported" true
    (List.exists (function Legality.La3 _ -> true | _ -> false) violations)

let test_illegal_f_detected () =
  (* An F that ignores the view breaks LU5. *)
  let good = Pair.privileged ~n:6 ~t:1 ~m:1 in
  let bad = { good with Pair.f = (fun _ -> 1); name = "P_prv_constF" } in
  let violations = Legality.check ~max_violations:5 ~universe:[ 0; 1 ] bad in
  Alcotest.(check bool) "LU5 violation reported" true
    (List.exists (function Legality.Lu5 _ -> true | _ -> false) violations)

(* Each of the five legality criteria, individually falsified by a pair
   broken for precisely that criterion — the checker must name the right
   one. Broken pairs are built at the acceptance dimensions (P_freq at
   n = 6t+1, P_prv at n = 5t+1). *)

let reports ctor pair universe =
  List.exists ctor (Legality.check ~max_violations:20 ~universe pair)

let test_lt1_breakable () =
  (* A one-step predicate that never fires, although C¹ is non-empty:
     inputs in C¹_k no longer force P1 on nearby views. *)
  let good = Pair.freq ~n:7 ~t:1 in
  let bad = { good with Pair.p1 = (fun _ -> false); name = "P_freq_noP1" } in
  Alcotest.(check bool) "LT1 reported" true
    (reports (function Legality.Lt1 _ -> true | _ -> false) bad [ 0; 1 ])

let test_lt2_breakable () =
  let good = Pair.privileged ~n:6 ~t:1 ~m:1 in
  let bad = { good with Pair.p2 = (fun _ -> false); name = "P_prv_noP2" } in
  Alcotest.(check bool) "LT2 reported" true
    (reports (function Legality.Lt2 _ -> true | _ -> false) bad [ 0; 1 ])

let test_la3_breakable () =
  (* P1 lowered to the two-step threshold (margin > 2t): two one-step
     deciders may extract different values. *)
  let good = Pair.freq ~n:7 ~t:1 in
  let bad = { good with Pair.p1 = good.Pair.p2; name = "P_freq_lowP1" } in
  Alcotest.(check bool) "LA3 reported" true
    (reports (function Legality.La3 _ -> true | _ -> false) bad [ 0; 1 ])

let test_la4_breakable () =
  (* The model checker's planted mutation: P_prv's two-step threshold
     lowered to #m > t. A two-step decider and a plain F-extractor can then
     disagree — exactly LA4. *)
  let good = Pair.privileged ~n:6 ~t:1 ~m:1 in
  let bad =
    { good with Pair.p2 = (fun s -> View_stats.count s 1 > 1); name = "P_prv_lowP2" }
  in
  Alcotest.(check bool) "LA4 reported" true
    (reports (function Legality.La4 _ -> true | _ -> false) bad [ 0; 1 ])

let test_lu5_breakable () =
  (* An F that ignores the view cannot respect dominant values. *)
  let good = Pair.privileged ~n:6 ~t:1 ~m:1 in
  let bad = { good with Pair.f = (fun _ -> 1); name = "P_prv_constF" } in
  Alcotest.(check bool) "LU5 reported" true
    (reports (function Legality.Lu5 _ -> true | _ -> false) bad [ 0; 1 ])

(* Pair.obligation: the typed bridge from condition levels to the
   model-checker's timeliness oracles. *)
let test_obligation () =
  let pair = Pair.privileged ~n:6 ~t:1 ~m:1 in
  (* C¹_f = C^prv_{3t+f}, C²_f = C^prv_{2t+f}: at f=1 one-step needs
     #m > 4, two-step #m > 3. *)
  let one_step = iv [ 1; 1; 1; 1; 1; 0 ] in      (* #m = 5 *)
  let two_step = iv [ 1; 1; 1; 1; 0; 0 ] in      (* #m = 4 *)
  let neither = iv [ 1; 1; 1; 0; 0; 0 ] in       (* #m = 3 *)
  Alcotest.(check bool) "one-step at f=1" true
    (Pair.obligation pair ~f:1 one_step = `One_step);
  Alcotest.(check bool) "two-step at f=1" true
    (Pair.obligation pair ~f:1 two_step = `Two_step);
  Alcotest.(check bool) "none at f=1" true
    (Pair.obligation pair ~f:1 neither = `None);
  (* With no actual failures the guarantees strengthen: #m = 4 > 3t. *)
  Alcotest.(check bool) "two-step input is one-step at f=0" true
    (Pair.obligation pair ~f:0 two_step = `One_step);
  Alcotest.check_raises "f beyond t rejected"
    (Invalid_argument "Pair.obligation: f outside 0..t") (fun () ->
      ignore (Pair.obligation pair ~f:2 one_step))

let () =
  Alcotest.run "dex_condition"
    [
      ( "condition",
        [
          Alcotest.test_case "frequency-based" `Quick test_freq_condition;
          Alcotest.test_case "privileged-value" `Quick test_privileged_condition;
          Alcotest.test_case "set operations" `Quick test_set_operations;
          Alcotest.test_case "subset" `Quick test_subset;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "level lookup" `Quick test_sequence_level;
          Alcotest.test_case "monotone" `Quick test_sequence_monotone;
          Alcotest.test_case "invalid bound" `Quick test_sequence_invalid;
        ] );
      ( "pair",
        [
          Alcotest.test_case "freq construction" `Quick test_freq_pair_construction;
          Alcotest.test_case "freq assumption n>6t" `Quick test_freq_pair_assumption;
          Alcotest.test_case "prv assumption n>5t" `Quick test_prv_pair_assumption;
          Alcotest.test_case "freq predicates" `Quick test_freq_predicates;
          Alcotest.test_case "prv predicates" `Quick test_prv_predicates;
          Alcotest.test_case "adaptive levels" `Quick test_one_step_level_freq;
          Alcotest.test_case "obligation" `Quick test_obligation;
        ] );
      ( "d-legal",
        [
          Alcotest.test_case "C^freq_d is d-legal" `Quick test_freq_is_d_legal;
          Alcotest.test_case "C^prv_d is d-legal" `Quick test_prv_is_d_legal;
          Alcotest.test_case "trivial not 1-legal" `Quick test_trivial_not_d_legal;
          Alcotest.test_case "d=0 always legal" `Quick test_d0_always_legal;
          Alcotest.test_case "empty vacuously legal" `Quick test_empty_condition_vacuously_legal;
          Alcotest.test_case "witness acceptability" `Quick test_witness_values_acceptable;
        ] );
      ( "legality",
        [
          Alcotest.test_case "view enumeration" `Quick test_views_enumeration;
          Alcotest.test_case "Theorem 1: P_freq legal" `Slow test_theorem1_freq_legal;
          Alcotest.test_case "Theorem 2: P_prv legal" `Slow test_theorem2_prv_legal;
          Alcotest.test_case "Theorem 2: P_prv legal, 3 values" `Slow
            test_theorem2_prv_legal_three_values;
          Alcotest.test_case "broken P1 detected" `Slow test_illegal_pair_detected;
          Alcotest.test_case "broken F detected" `Slow test_illegal_f_detected;
          Alcotest.test_case "LT1 breakable" `Slow test_lt1_breakable;
          Alcotest.test_case "LT2 breakable" `Slow test_lt2_breakable;
          Alcotest.test_case "LA3 breakable" `Slow test_la3_breakable;
          Alcotest.test_case "LA4 breakable" `Slow test_la4_breakable;
          Alcotest.test_case "LU5 breakable" `Slow test_lu5_breakable;
        ] );
    ]
