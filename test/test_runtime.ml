(* Tests for dex_runtime: mailboxes, the in-memory and TCP transports, and
   full DEX consensus running on real threads — the same Protocol.instance
   values the simulator drives. *)

open Dex_condition
open Dex_net
open Dex_underlying
open Dex_runtime

module D = Dex_core.Dex.Make (Uc_oracle)

let test_mailbox_fifo () =
  let box = Mailbox.create () in
  Mailbox.push box 1;
  Mailbox.push box 2;
  Alcotest.(check (option int)) "first" (Some 1) (Mailbox.pop ~timeout:0.1 box);
  Alcotest.(check (option int)) "second" (Some 2) (Mailbox.pop ~timeout:0.1 box)

let test_mailbox_timeout () =
  let box : int Mailbox.t = Mailbox.create () in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (option int)) "timeout" None (Mailbox.pop ~timeout:0.05 box);
  Alcotest.(check bool) "waited" true (Unix.gettimeofday () -. t0 >= 0.04)

let test_mailbox_close_wakes () =
  let box : int Mailbox.t = Mailbox.create () in
  Mailbox.close box;
  Alcotest.(check (option int)) "closed" None (Mailbox.pop ~timeout:1.0 box);
  Mailbox.push box 9;
  Alcotest.(check int) "push after close dropped" 0 (Mailbox.length box)

let test_mailbox_cross_thread () =
  let box = Mailbox.create () in
  let producer =
    Thread.create
      (fun () ->
        Thread.delay 0.01;
        Mailbox.push box 42)
      ()
  in
  Alcotest.(check (option int)) "received" (Some 42) (Mailbox.pop ~timeout:1.0 box);
  Thread.join producer

let test_mem_transport_roundtrip () =
  let tr = Transport.Mem.create ~pids:[ 0; 1 ] () in
  tr.Transport.send ~src:0 ~dst:1 "hello";
  (match tr.Transport.recv ~me:1 ~timeout:0.5 with
  | Some (src, m) ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check string) "payload" "hello" m
  | None -> Alcotest.fail "nothing received");
  tr.Transport.close ()

let test_mem_transport_unknown_dst () =
  let tr = Transport.Mem.create ~pids:[ 0 ] () in
  tr.Transport.send ~src:0 ~dst:99 "lost";
  Alcotest.(check bool) "no delivery" true (tr.Transport.recv ~me:0 ~timeout:0.05 = None);
  tr.Transport.close ()

let test_tcp_transport_roundtrip () =
  let tr = Transport.Tcp.create ~pids:[ 0; 1 ] () in
  tr.Transport.send ~src:0 ~dst:1 (7, "payload");
  (match tr.Transport.recv ~me:1 ~timeout:2.0 with
  | Some (src, (k, s)) ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check int) "fst" 7 k;
    Alcotest.(check string) "snd" "payload" s
  | None -> Alcotest.fail "nothing received over TCP");
  tr.Transport.close ()

let test_tcp_transport_many_messages () =
  let tr = Transport.Tcp.create ~pids:[ 0; 1 ] () in
  for i = 0 to 99 do
    tr.Transport.send ~src:0 ~dst:1 i
  done;
  let received = ref [] in
  let rec drain () =
    if List.length !received < 100 then
      match tr.Transport.recv ~me:1 ~timeout:2.0 with
      | Some (_, i) ->
        received := i :: !received;
        drain ()
      | None -> ()
  in
  drain ();
  Alcotest.(check int) "all arrived" 100 (List.length !received);
  (* TCP preserves per-connection order. *)
  Alcotest.(check (list int)) "in order" (List.init 100 Fun.id) (List.rev !received);
  tr.Transport.close ()

let test_link_stats_counters () =
  (* Two Tcp_codec meshes posing as two processes: A hosts pid 0, B hosts
     pid 1, cross-wired through [remotes]. A healthy send moves no
     link-health counter; killing B's endpoint makes A's sends burn the
     bounded retry budget (backoffs) and then abandon (drops); an unknown
     destination is abandoned immediately. *)
  let codec = Dex_codec.Codec.string in
  let port1 = ref 0 in
  let b =
    Transport.Tcp_codec.create ~codec
      ~on_bind:(fun _ port -> port1 := port)
      ~pids:[ 1 ] ()
  in
  let a = Transport.Tcp_codec.create ~codec ~remotes:[ (1, !port1) ] ~pids:[ 0 ] () in
  a.Transport.send ~src:0 ~dst:1 "ping";
  (match b.Transport.recv ~me:1 ~timeout:2.0 with
  | Some (0, "ping") -> ()
  | _ -> Alcotest.fail "healthy delivery failed");
  let healthy = a.Transport.link_stats () in
  Alcotest.(check int) "no backoffs while healthy" 0 healthy.Transport.backoffs;
  Alcotest.(check int) "no drops while healthy" 0 healthy.Transport.drops;
  b.Transport.close ();
  (* Wait for the closed listener to actually refuse connections (the
     accept thread needs a moment to wake and release the socket). *)
  let refused = ref false in
  let tries = ref 0 in
  while (not !refused) && !tries < 100 do
    incr tries;
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, !port1));
       Thread.delay 0.01
     with Unix.Unix_error _ -> refused := true);
    try Unix.close s with Unix.Unix_error _ -> ()
  done;
  Alcotest.(check bool) "closed listener refuses connects" true !refused;
  (* A fresh endpoint pointed at the dead listener: every connect is
     refused, so each send burns the full retry budget and is abandoned. *)
  let c = Transport.Tcp_codec.create ~codec ~remotes:[ (1, !port1) ] ~pids:[ 2 ] () in
  c.Transport.send ~src:2 ~dst:1 "lost-1";
  c.Transport.send ~src:2 ~dst:1 "lost-2";
  let broken = c.Transport.link_stats () in
  Alcotest.(check bool) "backoffs counted" true (broken.Transport.backoffs > 0);
  Alcotest.(check int) "both messages dropped" 2 broken.Transport.drops;
  Alcotest.(check int) "per-destination drop count" 2 (c.Transport.drop_count ~dst:1);
  c.Transport.send ~src:2 ~dst:99 "nowhere";
  Alcotest.(check int) "unknown dst dropped immediately" 1 (c.Transport.drop_count ~dst:99);
  (* Per-peer breakdown: the dead listener's losses must be attributed to
     pid 1 and the unknown destination's to pid 99, not blurred together. *)
  (match List.assoc_opt 1 (c.Transport.peer_links ()) with
  | Some s ->
    Alcotest.(check int) "peer 1 drops" 2 s.Transport.drops;
    Alcotest.(check bool) "peer 1 backoffs" true (s.Transport.backoffs > 0)
  | None -> Alcotest.fail "peer 1 missing from peer_links");
  (match List.assoc_opt 99 (c.Transport.peer_links ()) with
  | Some s ->
    Alcotest.(check int) "peer 99 drops" 1 s.Transport.drops;
    Alcotest.(check int) "peer 99 backoffs" 0 s.Transport.backoffs
  | None -> Alcotest.fail "peer 99 missing from peer_links");
  c.Transport.close ();
  a.Transport.close ();
  let registry = Dex_metrics.Registry.create () in
  let mem = Transport.Mem.create ~metrics:registry ~pids:[ 0; 1 ] () in
  mem.Transport.send ~src:0 ~dst:1 "m";
  ignore (mem.Transport.recv ~me:1 ~timeout:0.5);
  Alcotest.(check int) "mem reports no reconnects" 0
    (mem.Transport.link_stats ()).Transport.reconnects;
  mem.Transport.send ~src:0 ~dst:42 "void";
  let snap = Dex_metrics.Registry.snapshot registry in
  Alcotest.(check int) "registry mirrors total drops" 1
    (Dex_metrics.Registry.get snap "net/drops");
  Alcotest.(check int) "registry mirrors per-peer drops" 1
    (Dex_metrics.Registry.get snap "net/drops/peer42");
  mem.Transport.close ()

let run_dex_cluster ~transport_kind ~proposals =
  let pair = Pair.freq ~n:7 ~t:1 in
  let cfg = D.config ~pair () in
  let extra = D.extra cfg in
  let pids = Pid.all ~n:7 @ List.map fst extra in
  let transport =
    match transport_kind with
    | `Mem -> Transport.Mem.create ~jitter:0.002 ~seed:5 ~pids ()
    | `Tcp -> Transport.Tcp.create ~pids ()
  in
  let cluster =
    Cluster.create ~transport ~n:7 ~extra (fun p ->
        D.instance cfg ~me:p ~proposal:proposals.(p))
  in
  Cluster.start cluster;
  let ok = Cluster.await ~timeout:20.0 cluster in
  let decisions = Cluster.decisions cluster in
  Cluster.shutdown cluster;
  (ok, decisions)

let check_cluster_consensus ~expect_value ~expect_tag (ok, decisions) =
  Alcotest.(check bool) "all decided" true ok;
  Array.iter
    (function
      | Some d ->
        Alcotest.(check int) "value" expect_value d.Cluster.value;
        (match expect_tag with
        | Some tag -> Alcotest.(check string) "tag" tag d.Cluster.tag
        | None -> ())
      | None -> Alcotest.fail "missing decision")
    decisions

let test_cluster_mem_unanimous () =
  check_cluster_consensus ~expect_value:5 ~expect_tag:(Some "one-step")
    (run_dex_cluster ~transport_kind:`Mem ~proposals:(Array.make 7 5))

let test_cluster_mem_mixed () =
  (* margin 3: two-step or slower depending on real interleaving, but always
     value 5 (it is the only F-candidate among correct processes: the
     two-step predicates or the oracle majority both pick 5). *)
  let ok, decisions = run_dex_cluster ~transport_kind:`Mem ~proposals:[| 5; 5; 5; 5; 5; 1; 1 |] in
  Alcotest.(check bool) "all decided" true ok;
  let values =
    Array.to_list decisions |> List.filter_map (Option.map (fun d -> d.Cluster.value))
  in
  Alcotest.(check int) "seven decisions" 7 (List.length values);
  Alcotest.(check (list int)) "agreement" [ 5 ] (List.sort_uniq compare values)

let test_cluster_tcp_unanimous () =
  check_cluster_consensus ~expect_value:9 ~expect_tag:(Some "one-step")
    (run_dex_cluster ~transport_kind:`Tcp ~proposals:(Array.make 7 9))

let test_cluster_decision_wall_times () =
  let ok, decisions = run_dex_cluster ~transport_kind:`Mem ~proposals:(Array.make 7 5) in
  Alcotest.(check bool) "decided" true ok;
  Array.iter
    (function
      | Some d -> Alcotest.(check bool) "wall time sane" true (d.Cluster.wall >= 0.0 && d.Cluster.wall < 20.0)
      | None -> ())
    decisions

module Dleader = Dex_core.Dex.Make (Uc_leader)

let test_cluster_leader_uc_on_threads () =
  (* The leader-based UC's timers run as real sleeps on the thread runtime;
     shrink the round timeout so the fallback path completes quickly. A
     pessimistic input forces the UC rounds to actually run. *)
  let saved = !Uc_leader.timeout_base in
  Uc_leader.timeout_base := 0.25;
  Fun.protect
    ~finally:(fun () -> Uc_leader.timeout_base := saved)
    (fun () ->
      let pair = Pair.freq ~n:7 ~t:1 in
      let cfg = Dleader.config ~pair () in
      let proposals = [| 5; 5; 5; 5; 1; 1; 1 |] in
      let pids = Pid.all ~n:7 in
      let transport = Transport.Mem.create ~jitter:0.001 ~seed:9 ~pids () in
      let cluster =
        Cluster.create ~transport ~n:7 (fun p ->
            Dleader.instance cfg ~me:p ~proposal:proposals.(p))
      in
      Cluster.start cluster;
      let ok = Cluster.await ~timeout:30.0 cluster in
      let decisions = Cluster.decisions cluster in
      Cluster.shutdown cluster;
      Alcotest.(check bool) "all decided" true ok;
      let values =
        Array.to_list decisions |> List.filter_map (Option.map (fun d -> d.Cluster.value))
      in
      Alcotest.(check int) "seven decisions" 7 (List.length values);
      Alcotest.(check int) "agreement" 1 (List.length (List.sort_uniq compare values)))

(* ----------------------- reactor ----------------------- *)

(* A descriptor number past FD_SETSIZE without opening 1024 files: the
   registration guard must reject it before select ever sees it. *)
external fd_of_int : int -> Unix.file_descr = "%identity"

let await ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let test_reactor_timer_ordering () =
  let r = Reactor.create () in
  let mu = Mutex.create () in
  let fired = ref [] in
  let note tag () =
    Mutex.lock mu;
    fired := tag :: !fired;
    Mutex.unlock mu
  in
  (* Out-of-order scheduling must fire in deadline order; equal deadlines
     fire in scheduling order. *)
  ignore (Reactor.after r 0.03 (note "c"));
  ignore (Reactor.after r 0.01 (note "a"));
  ignore (Reactor.after r 0.02 (note "b"));
  ignore (Reactor.after r 0.05 (note "tie1"));
  ignore (Reactor.after r 0.05 (note "tie2"));
  Alcotest.(check bool) "all timers fired" true
    (await (fun () -> List.length !fired = 5));
  Alcotest.(check (list string)) "deadline order, ties in scheduling order"
    [ "a"; "b"; "c"; "tie1"; "tie2" ]
    (List.rev !fired);
  Reactor.stop r

let test_reactor_periodic_cancel () =
  let r = Reactor.create () in
  let n = ref 0 in
  let tm = Reactor.every r 0.005 (fun () -> incr n) in
  Alcotest.(check bool) "fires repeatedly" true (await (fun () -> !n >= 3));
  Reactor.cancel r tm;
  (* One firing may already be in flight when cancel lands; after it the
     count must freeze. *)
  Thread.delay 0.05;
  let frozen = !n in
  Thread.delay 0.05;
  Alcotest.(check int) "no firings after cancel" frozen !n;
  Reactor.cancel r tm;
  (* double cancel is a no-op *)
  ignore (Reactor.after r 0.01 (fun () -> ()));
  Alcotest.(check bool) "loop still alive" true (await (fun () -> Reactor.timer_count r <= 1));
  Reactor.stop r;
  Alcotest.(check bool) "stopped" true (Reactor.stopped r)

let test_reactor_deregister_during_dispatch () =
  (* Two descriptors readable in the same select round; whichever handler
     runs first deregisters both. The dispatcher re-checks registration
     before each callback, so exactly one handler may fire. *)
  let r = Reactor.create () in
  let a_r, a_w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let b_r, b_w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let mu = Mutex.create () in
  let fired = ref 0 in
  let handler self other () =
    Mutex.lock mu;
    incr fired;
    Mutex.unlock mu;
    ignore (Unix.read self (Bytes.create 8) 0 8);
    Reactor.remove r self;
    Reactor.remove r other
  in
  (* Register both before making either readable: if a byte landed first,
     the loop could dispatch one handler before the other fd is registered —
     its remove would be a no-op and the late registration would fire. *)
  Reactor.on_readable r a_r (handler a_r b_r);
  Reactor.on_readable r b_r (handler b_r a_r);
  ignore (Unix.write a_w (Bytes.of_string "x") 0 1);
  ignore (Unix.write b_w (Bytes.of_string "x") 0 1);
  Alcotest.(check bool) "one handler ran" true (await (fun () -> !fired >= 1));
  Thread.delay 0.05;
  Alcotest.(check int) "removed handler never fired" 1 !fired;
  Alcotest.(check int) "no descriptors left" 0 (Reactor.fd_count r);
  Reactor.stop r;
  List.iter Unix.close [ a_r; a_w; b_r; b_w ]

let test_reactor_fd_setsize_guard () =
  let r = Reactor.create () in
  let too_big = fd_of_int (Reactor.max_fds + 7) in
  let rejected f =
    match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "on_readable rejects" true
    (rejected (fun () -> Reactor.on_readable r too_big (fun () -> ())));
  Alcotest.(check bool) "on_writable rejects" true
    (rejected (fun () -> Reactor.on_writable r too_big (fun () -> ())));
  Alcotest.(check int) "nothing registered" 0 (Reactor.fd_count r);
  Reactor.stop r

let test_reactor_conn_partial_frames () =
  (* Frames arriving byte-dribbled and coalesced must reassemble equally;
     EOF fires on_close exactly once. *)
  let r = Reactor.create () in
  let near, far = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let codec = Dex_codec.Codec.string in
  let reader = Dex_codec.Codec.Frame.Reader.create codec in
  let box = Mailbox.create () in
  let closes = ref 0 in
  let conn =
    Reactor.Conn.attach r near
      ~on_bytes:(fun buf len ->
        List.iter (Mailbox.push box) (Dex_codec.Codec.Frame.Reader.feed reader buf len))
      ~on_close:(fun () -> incr closes)
  in
  (* One frame, one byte at a time. *)
  let f1 = Dex_codec.Codec.Frame.to_string codec "dribble" in
  String.iter
    (fun ch ->
      ignore (Unix.write far (Bytes.make 1 ch) 0 1);
      Thread.delay 0.001)
    f1;
  Alcotest.(check (option string)) "dribbled frame" (Some "dribble")
    (Mailbox.pop ~timeout:2.0 box);
  (* Two frames in a single write. *)
  let pair =
    Dex_codec.Codec.Frame.to_string codec "first" ^ Dex_codec.Codec.Frame.to_string codec "second"
  in
  let b = Bytes.of_string pair in
  ignore (Unix.write far b 0 (Bytes.length b));
  Alcotest.(check (option string)) "coalesced 1" (Some "first") (Mailbox.pop ~timeout:2.0 box);
  Alcotest.(check (option string)) "coalesced 2" (Some "second") (Mailbox.pop ~timeout:2.0 box);
  Unix.close far;
  Alcotest.(check bool) "eof close" true (await (fun () -> !closes = 1));
  Alcotest.(check bool) "conn reports closed" true (not (Reactor.Conn.is_open conn));
  Reactor.stop r

let test_reactor_conn_write_backpressure () =
  (* 200 x 8 KiB frames overflow the socket buffer, forcing partial writes
     and queue growth; a slow reader on the far end must still see every
     frame whole and in order. *)
  let r = Reactor.create () in
  let near, far = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let codec = Dex_codec.Codec.string in
  let conn =
    Reactor.Conn.attach r near ~on_bytes:(fun _ _ -> ()) ~on_close:(fun () -> ())
  in
  let frames = 200 in
  let payload i = Printf.sprintf "%04d:%s" i (String.make 8192 (Char.chr (97 + (i mod 26)))) in
  for i = 0 to frames - 1 do
    Reactor.Conn.send conn (Dex_codec.Codec.Frame.to_string codec (payload i))
  done;
  let reader = Dex_codec.Codec.Frame.Reader.create codec in
  let got = ref [] in
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while List.length !got < frames && Unix.gettimeofday () < deadline do
    match Unix.select [ far ] [] [] 1.0 with
    | [], _, _ -> ()
    | _ ->
      let n = Unix.read far buf 0 (Bytes.length buf) in
      if n > 0 then
        List.iter
          (fun s -> got := s :: !got)
          (Dex_codec.Codec.Frame.Reader.feed reader buf n);
      Thread.delay 0.001 (* keep the reader slower than the writer *)
  done;
  let got = List.rev !got in
  Alcotest.(check int) "every frame arrived" frames (List.length got);
  List.iteri
    (fun i s -> if s <> payload i then Alcotest.failf "frame %d corrupted" i)
    got;
  Alcotest.(check bool) "backpressure was observed" true
    (Reactor.Conn.hwm conn > 8192);
  Alcotest.(check int) "queue fully drained" 0 (Reactor.Conn.pending_bytes conn);
  Reactor.Conn.close conn;
  Reactor.stop r;
  Unix.close far

let test_tcp_reactor_roundtrip () =
  let r = Reactor.create () in
  let codec = Dex_codec.Codec.string in
  let port = ref 0 in
  let b =
    Transport.Tcp_codec.create ~codec ~reactor:r
      ~on_bind:(fun _ p -> port := p)
      ~pids:[ 1 ] ()
  in
  let a =
    Transport.Tcp_codec.create ~codec ~reactor:r ~remotes:[ (1, !port) ] ~pids:[ 0 ] ()
  in
  for i = 0 to 49 do
    a.Transport.send ~src:0 ~dst:1 (Printf.sprintf "m%d" i)
  done;
  let received = ref [] in
  let rec drain () =
    if List.length !received < 50 then
      match b.Transport.recv ~me:1 ~timeout:2.0 with
      | Some (0, m) ->
        received := m :: !received;
        drain ()
      | Some (src, _) -> Alcotest.failf "wrong src %d" src
      | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "all arrived in order"
    (List.init 50 (Printf.sprintf "m%d"))
    (List.rev !received);
  a.Transport.close ();
  b.Transport.close ();
  Reactor.stop r

let test_tcp_reactor_reconnect_while_writable () =
  (* Kill the peer endpoint, keep sending into the (possibly still armed)
     write path, then resurrect a listener on the same port: the frames
     buffered across the teardown must come out whole and in order on the
     fresh connection — the reconnect-while-writable race. *)
  let r = Reactor.create () in
  let codec = Dex_codec.Codec.string in
  let frame_codec = Dex_codec.Codec.pair Dex_codec.Codec.int codec in
  let port = ref 0 in
  let b =
    Transport.Tcp_codec.create ~codec ~reactor:r
      ~on_bind:(fun _ p -> port := p)
      ~pids:[ 1 ] ()
  in
  let a =
    Transport.Tcp_codec.create ~codec ~reactor:r ~remotes:[ (1, !port) ] ~pids:[ 0 ] ()
  in
  a.Transport.send ~src:0 ~dst:1 "before";
  (match b.Transport.recv ~me:1 ~timeout:2.0 with
  | Some (0, "before") -> ()
  | _ -> Alcotest.fail "healthy delivery failed");
  b.Transport.close ();
  (* Re-bind the freed port ourselves, then send while A's link is somewhere
     between armed-writable, torn down and retrying. *)
  let lst = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lst Unix.SO_REUSEADDR true;
  Unix.bind lst (Unix.ADDR_INET (Unix.inet_addr_loopback, !port));
  Unix.listen lst 4;
  a.Transport.send ~src:0 ~dst:1 "during-1";
  a.Transport.send ~src:0 ~dst:1 "during-2";
  let reader = Dex_codec.Codec.Frame.Reader.create frame_codec in
  let got = ref [] in
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let conns = ref [] in
  while List.length !got < 2 && Unix.gettimeofday () < deadline do
    match Unix.select (lst :: !conns) [] [] 0.2 with
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd = lst then begin
            let c, _ = Unix.accept lst in
            conns := c :: !conns
          end
          else
            let n = Unix.read fd buf 0 (Bytes.length buf) in
            if n > 0 then
              List.iter
                (fun f -> got := f :: !got)
                (Dex_codec.Codec.Frame.Reader.feed reader buf n))
        ready
  done;
  Alcotest.(check (list (pair int string))) "buffered frames replayed in order"
    [ (0, "during-1"); (0, "during-2") ]
    (List.rev !got);
  a.Transport.close ();
  List.iter Unix.close (lst :: !conns);
  Reactor.stop r

let test_cluster_double_start_rejected () =
  let transport = Transport.Mem.create ~pids:[ 0 ] () in
  let cluster =
    Cluster.create ~transport ~n:1 (fun _ ->
        { Protocol.start = (fun () -> []); on_message = (fun ~now:_ ~from:_ () -> []) })
  in
  Cluster.start cluster;
  Alcotest.check_raises "double start" (Invalid_argument "Cluster.start: already started")
    (fun () -> Cluster.start cluster);
  Cluster.shutdown cluster

let () =
  Alcotest.run "dex_runtime"
    [
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "timeout" `Quick test_mailbox_timeout;
          Alcotest.test_case "close wakes" `Quick test_mailbox_close_wakes;
          Alcotest.test_case "cross-thread" `Quick test_mailbox_cross_thread;
        ] );
      ( "transport",
        [
          Alcotest.test_case "mem roundtrip" `Quick test_mem_transport_roundtrip;
          Alcotest.test_case "mem unknown dst" `Quick test_mem_transport_unknown_dst;
          Alcotest.test_case "tcp roundtrip" `Quick test_tcp_transport_roundtrip;
          Alcotest.test_case "tcp ordering" `Quick test_tcp_transport_many_messages;
          Alcotest.test_case "link stats" `Quick test_link_stats_counters;
        ] );
      ( "reactor",
        [
          Alcotest.test_case "timer ordering" `Quick test_reactor_timer_ordering;
          Alcotest.test_case "periodic cancel" `Quick test_reactor_periodic_cancel;
          Alcotest.test_case "deregister during dispatch" `Quick
            test_reactor_deregister_during_dispatch;
          Alcotest.test_case "FD_SETSIZE guard" `Quick test_reactor_fd_setsize_guard;
          Alcotest.test_case "conn partial frames" `Quick test_reactor_conn_partial_frames;
          Alcotest.test_case "conn write backpressure" `Quick
            test_reactor_conn_write_backpressure;
          Alcotest.test_case "tcp_codec on reactor" `Quick test_tcp_reactor_roundtrip;
          Alcotest.test_case "reconnect while writable" `Quick
            test_tcp_reactor_reconnect_while_writable;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "mem unanimous one-step" `Quick test_cluster_mem_unanimous;
          Alcotest.test_case "mem mixed input" `Quick test_cluster_mem_mixed;
          Alcotest.test_case "tcp unanimous one-step" `Quick test_cluster_tcp_unanimous;
          Alcotest.test_case "wall times" `Quick test_cluster_decision_wall_times;
          Alcotest.test_case "leader UC on threads" `Quick test_cluster_leader_uc_on_threads;
          Alcotest.test_case "double start rejected" `Quick test_cluster_double_start_rejected;
        ] );
    ]
