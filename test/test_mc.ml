(* Tests for lib/mc: schedule-driven execution, bounded exploration,
   oracles, and the mutation -> counterexample -> shrink -> replay
   pipeline. *)

open Dex_mcheck

let scenario ?(lane = Dex_core.Protocol_lane.Dex) ?(mutation = None) ?(faults = [])
    kind ~n ~t proposals =
  { Dex_model.lane; kind; n; t; proposals; faults; mutation }

let freq4 proposals = scenario Dex_model.Freq ~n:4 ~t:0 proposals

let decision_values (s : Exec.summary) =
  Array.to_list (Array.map (Option.map (fun d -> d.Exec.value)) s.Exec.decisions)

(* {2 Exec} *)

let test_fifo_decides () =
  let sys = Dex_model.system (freq4 [ 1; 1; 1; 1 ]) in
  let t = Exec.create sys in
  Alcotest.(check bool) "completes" true (Exec.run_fifo t);
  Alcotest.(check bool) "quiescent" true (Exec.quiescent t);
  let s = Exec.summary t in
  Alcotest.(check (list (option int))) "all decide 1"
    [ Some 1; Some 1; Some 1; Some 1 ] (decision_values s);
  Alcotest.(check bool) "no late decides" true (s.Exec.late = [])

let test_replay_deterministic () =
  let sys = Dex_model.system (freq4 [ 1; 0; 1; 0 ]) in
  let run () =
    let t = Exec.create sys in
    ignore (Exec.run_fifo t);
    let s = Exec.summary t in
    (decision_values s, List.map (fun d -> d.Exec.key) s.Exec.deliveries)
  in
  let d1, sched1 = run () in
  let d2, sched2 = run () in
  Alcotest.(check bool) "same decisions" true (d1 = d2);
  Alcotest.(check bool) "same schedule" true (sched1 = sched2);
  (* Replaying the recorded schedule reproduces the run exactly. *)
  let t = Exec.replay sys sched1 in
  Alcotest.(check bool) "replay quiescent" true (Exec.quiescent t);
  Alcotest.(check bool) "replay decisions" true
    (decision_values (Exec.summary t) = d1)

let test_key_string_roundtrip () =
  let keys =
    [
      { Exec.src = 0; dst = 3; kind = Exec.Message; chan = 0 };
      { Exec.src = 12; dst = 0; kind = Exec.Timer; chan = 41 };
      { Exec.src = 5; dst = 5; kind = Exec.Message; chan = 7 };
    ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Exec.key_to_string k) true
        (Exec.key_of_string (Exec.key_to_string k) = Some k))
    keys;
  Alcotest.(check bool) "garbage rejected" true (Exec.key_of_string "p0->p1" = None)

let test_fingerprint_commutation () =
  let sys = Dex_model.system (freq4 [ 0; 0; 0; 0 ]) in
  let keys = Exec.inflight (Exec.create sys) in
  let find pred = List.find pred keys in
  let fp sched =
    let t = Exec.replay sys sched in
    Exec.fingerprint t
  in
  (* Deliveries at distinct receivers commute: swapped order, same state. *)
  let a = find (fun k -> k.Exec.src = 0 && k.Exec.dst = 1) in
  let b = find (fun k -> k.Exec.src = 0 && k.Exec.dst = 2) in
  Alcotest.(check bool) "distinct receivers commute" true
    (fp [ a; b ] = fp [ b; a ]);
  (* Same receiver: order is observable, states differ. *)
  let c = find (fun k -> k.Exec.src = 2 && k.Exec.dst = 1) in
  Alcotest.(check bool) "same receiver does not commute" false
    (fp [ a; c ] = fp [ c; a ])

(* {2 Checker + oracles} *)

let explore ?(budget = 1) s =
  Checker.explore ~sys:(Dex_model.system s)
    ~bounds:
      {
        Checker.delay_budget = budget;
        branch_width = 8;
        max_schedules = 50_000;
        max_steps = 10_000;
      }
    ~check:(fun sum -> Dex_model.check s sum)
    ()

let test_explore_exhaustive_clean () =
  List.iter
    (fun proposals ->
      let outcome = explore ~budget:2 (freq4 proposals) in
      Alcotest.(check bool) "no violation" true (outcome.Checker.violation = None);
      Alcotest.(check bool) "exhausted" true outcome.Checker.stats.Checker.exhausted;
      Alcotest.(check bool) "explored schedules" true
        (outcome.Checker.stats.Checker.schedules >= 1))
    [ [ 0; 0; 0; 0 ]; [ 1; 0; 1; 0 ]; [ 1; 1; 1; 0 ] ]

let test_explore_prv_with_fault () =
  let s =
    scenario ~faults:[ (0, Dex_model.Silent) ] (Dex_model.Prv 1) ~n:6 ~t:1
      [ 1; 1; 0; 0; 0; 0 ]
  in
  let outcome = explore ~budget:1 s in
  Alcotest.(check bool) "no violation" true (outcome.Checker.violation = None);
  Alcotest.(check bool) "exhausted" true outcome.Checker.stats.Checker.exhausted

let test_oracle_rejects_disagreement () =
  (* Hand-build a summary where two correct processes decided differently;
     the agreement oracle must fire. *)
  let s = freq4 [ 1; 1; 1; 1 ] in
  let sys = Dex_model.system s in
  let t = Exec.create sys in
  ignore (Exec.run_fifo t);
  let sum = Exec.summary t in
  let d0 =
    match sum.Exec.decisions.(0) with Some d -> d | None -> Alcotest.fail "p0 undecided"
  in
  let forged = Array.copy sum.Exec.decisions in
  forged.(2) <- Some { d0 with Exec.value = 1 - d0.Exec.value };
  match Dex_model.check s { sum with Exec.decisions = forged } with
  | Some (Oracles.Agreement _) -> ()
  | other ->
    Alcotest.failf "expected agreement violation, got %s"
      (match other with
      | None -> "none"
      | Some v -> Format.asprintf "%a" Oracles.pp_violation v)

(* {2 Non-dex lanes} *)

(* The new lanes through the same exec/checker/oracle pipeline: exhaustive
   small shapes stay clean, and each lane's planted mutation is caught by
   the dynamic oracles (its pair stays legal — only the lane config is
   broken). *)

let test_lanes_exhaustive_clean () =
  List.iter
    (fun lane ->
      List.iter
        (fun proposals ->
          let s = scenario ~lane Dex_model.Freq ~n:4 ~t:0 proposals in
          let outcome = explore ~budget:2 s in
          Alcotest.(check bool)
            (Printf.sprintf "%s no violation" (Dex_core.Protocol_lane.id_to_string lane))
            true
            (outcome.Checker.violation = None);
          Alcotest.(check bool) "exhausted" true outcome.Checker.stats.Checker.exhausted)
        [ [ 0; 0; 0; 0 ]; [ 1; 0; 1; 0 ] ])
    [ Dex_core.Protocol_lane.Kuo_chen; Dex_core.Protocol_lane.Hbft ]

let test_lanes_prv_with_fault () =
  List.iter
    (fun lane ->
      let s =
        scenario ~lane ~faults:[ (0, Dex_model.Silent) ] (Dex_model.Prv 1) ~n:6 ~t:1
          [ 1; 1; 0; 0; 0; 0 ]
      in
      let outcome = explore ~budget:1 s in
      Alcotest.(check bool)
        (Printf.sprintf "%s no violation" (Dex_core.Protocol_lane.id_to_string lane))
        true
        (outcome.Checker.violation = None);
      Alcotest.(check bool) "exhausted" true outcome.Checker.stats.Checker.exhausted)
    [ Dex_core.Protocol_lane.Kuo_chen; Dex_core.Protocol_lane.Hbft ]

let sample_violation ~what s =
  let sys = Dex_model.system s in
  let check sum = Dex_model.check s sum in
  match Checker.sample ~sys ~seed:7 ~schedules:50_000 ~max_steps:10_000 ~check () with
  | None -> Alcotest.failf "seeded sampling no longer finds %s" what
  | Some (v, schedule) -> (sys, check, v, schedule)

let test_kuo_chen_mutation_caught () =
  (* decide-low (2c > n-t): split adopt samples leave mixed second-round
     votes and a minority-supported decide disagrees with the UC outcome —
     no Byzantine fault needed. *)
  let s =
    scenario ~lane:Dex_core.Protocol_lane.Kuo_chen ~mutation:(Some "decide-low")
      (Dex_model.Prv 1) ~n:6 ~t:1 [ 1; 1; 1; 0; 0; 0 ]
  in
  let sys, check, v, schedule = sample_violation ~what:"the Kuo-Chen planted bug" s in
  (match v with
  | Oracles.Agreement _ -> ()
  | other -> Alcotest.failf "expected agreement, got %a" Oracles.pp_violation other);
  let shrunk = Checker.shrink ~sys ~check schedule in
  Alcotest.(check bool) "shrunk still violates" true
    (Checker.replay_check ~sys ~check shrunk <> None)

let test_hbft_mutation_caught () =
  (* spec-low (n-2t accepts) alone is still safe — four matching accepts
     drag the UC majority along — so the planted bug needs the lane's
     Byzantine coordinator splitting VAL/ORDER/ACCEPT. *)
  let s =
    scenario ~lane:Dex_core.Protocol_lane.Hbft ~mutation:(Some "spec-low")
      ~faults:[ (0, Dex_model.Equivocate { v1 = 0; v2 = 1; cut = 3 }) ]
      (Dex_model.Prv 1) ~n:6 ~t:1 [ 0; 1; 0; 0; 0; 0 ]
  in
  let sys, check, v, schedule = sample_violation ~what:"the hBFT planted bug" s in
  (match v with
  | Oracles.Agreement _ -> ()
  | other -> Alcotest.failf "expected agreement, got %a" Oracles.pp_violation other);
  let shrunk = Checker.shrink ~sys ~check schedule in
  Alcotest.(check bool) "shrunk still violates" true
    (Checker.replay_check ~sys ~check shrunk <> None)

let mutant =
  scenario ~mutation:(Some "p2-gt-t") (Dex_model.Prv 1) ~n:6 ~t:1 [ 1; 1; 0; 0; 0; 0 ]

let find_mutant_violation () =
  let sys = Dex_model.system mutant in
  let check sum = Dex_model.check mutant sum in
  match
    Checker.sample ~sys ~seed:7 ~schedules:50_000 ~max_steps:10_000 ~check ()
  with
  | None -> Alcotest.fail "seeded sampling no longer finds the planted violation"
  | Some (v, schedule) -> (sys, check, v, schedule)

let test_mutation_legality_and_counterexample () =
  (match Oracles.legal_pair ~universe:[ 0; 1 ] (Dex_model.pair_of_scenario mutant) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mutated pair should fail the legality checker");
  let sys, check, _, schedule = find_mutant_violation () in
  let shrunk = Checker.shrink ~sys ~check schedule in
  Alcotest.(check bool) "shrunk no longer" true
    (List.length shrunk <= List.length schedule);
  (* The shrunk schedule must still violate, twice in a row (determinism). *)
  let verdict () =
    match Checker.replay_check ~sys ~check shrunk with
    | Some v -> Format.asprintf "%a" Oracles.pp_violation v
    | None -> Alcotest.fail "shrunk schedule lost the violation"
  in
  Alcotest.(check string) "deterministic replay" (verdict ()) (verdict ())

let test_counterexample_file_roundtrip () =
  let _, _, v, schedule = find_mutant_violation () in
  let file = Filename.temp_file "dex_mc_cex" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Dex_model.save_counterexample ~file mutant schedule v;
      let loaded, sched' = Dex_model.load_counterexample ~file in
      Alcotest.(check bool) "scenario" true (loaded = mutant);
      Alcotest.(check bool) "schedule" true (sched' = schedule);
      (* The reloaded counterexample still reproduces the violation. *)
      let sys = Dex_model.system loaded in
      let check sum = Dex_model.check loaded sum in
      Alcotest.(check bool) "reproduces" true
        (Checker.replay_check ~sys ~check sched' <> None))

let test_unknown_mutation_rejected () =
  let s = scenario ~mutation:(Some "nope") Dex_model.Freq ~n:4 ~t:0 [ 0; 0; 0; 0 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dex_model.pair_of_scenario s);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "dex_mc"
    [
      ( "exec",
        [
          Alcotest.test_case "fifo run decides" `Quick test_fifo_decides;
          Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
          Alcotest.test_case "key round-trip" `Quick test_key_string_roundtrip;
          Alcotest.test_case "fingerprint commutation" `Quick test_fingerprint_commutation;
        ] );
      ( "checker",
        [
          Alcotest.test_case "exhaustive clean configs" `Quick test_explore_exhaustive_clean;
          Alcotest.test_case "prv with silent fault" `Quick test_explore_prv_with_fault;
          Alcotest.test_case "oracle rejects disagreement" `Quick
            test_oracle_rejects_disagreement;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "exhaustive clean (two-step, hbft)" `Quick
            test_lanes_exhaustive_clean;
          Alcotest.test_case "prv with silent fault (two-step, hbft)" `Quick
            test_lanes_prv_with_fault;
          Alcotest.test_case "two-step decide-low caught" `Quick
            test_kuo_chen_mutation_caught;
          Alcotest.test_case "hbft spec-low caught" `Quick test_hbft_mutation_caught;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "legality + shrink + replay" `Quick
            test_mutation_legality_and_counterexample;
          Alcotest.test_case "counterexample file round-trip" `Quick
            test_counterexample_file_roundtrip;
          Alcotest.test_case "unknown mutation rejected" `Quick
            test_unknown_mutation_rejected;
        ] );
    ]
