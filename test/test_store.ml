(* Tests for dex_store: WAL append/sync/replay, crash-point injection (torn
   final record, truncated segment, corrupted checksum mid-segment, lsn-chain
   gap, abandoned buffers), segment truncation after snapshots, group commit,
   snapshot install/retention/interrupted-install, and the recovery
   composition. Every crash case must recover exactly the last durable
   prefix — never more, never garbage. *)

open Dex_store

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dex-store-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  dir

let payload i = Printf.sprintf "record-%04d-%s" i (String.make 48 'x')

let fill wal k = List.init k (fun i -> Wal.append wal (payload i)) |> ignore

(* Flip one byte at [off] in [path]. *)
let corrupt path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let truncate_to path size =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Unix.ftruncate fd size;
  Unix.close fd

let seg_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".seg")
  |> List.sort compare

(* ------------------------------- WAL ------------------------------- *)

let test_wal_roundtrip () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  Alcotest.(check (list string)) "fresh log empty" [] o.Wal.entries;
  fill o.Wal.wal 10;
  Alcotest.(check int) "last lsn" 10 (Wal.last_lsn o.Wal.wal);
  Alcotest.(check int) "nothing durable yet" 0 (Wal.durable_lsn o.Wal.wal);
  Alcotest.(check int) "watermark after sync" 10 (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  let o2 = Wal.open_ dir in
  Alcotest.(check (list string))
    "replay in lsn order"
    (List.init 10 payload)
    o2.Wal.entries;
  Alcotest.(check bool) "clean close is not torn" false o2.Wal.torn;
  Alcotest.(check int) "appends continue the chain" 11 (Wal.append o2.Wal.wal "next");
  Wal.close o2.Wal.wal

let test_wal_segment_rotation () =
  let dir = fresh_dir () in
  let o = Wal.open_ ~segment_bytes:512 dir in
  fill o.Wal.wal 30;
  ignore (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  Alcotest.(check bool) "rotated into several segments" true (List.length (seg_files dir) > 2);
  let o2 = Wal.open_ ~segment_bytes:512 dir in
  Alcotest.(check (list string))
    "replay spans segments"
    (List.init 30 payload)
    o2.Wal.entries;
  Wal.close o2.Wal.wal

let test_wal_torn_final_record () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  fill o.Wal.wal 5;
  ignore (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  (* A crash mid-write leaves a partial frame at the tail. *)
  let seg = Filename.concat dir (List.hd (seg_files dir)) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc "\x00\x00\x00\x30partial-frame-without-checksu";
  close_out oc;
  let o2 = Wal.open_ dir in
  Alcotest.(check (list string)) "prefix survives" (List.init 5 payload) o2.Wal.entries;
  Alcotest.(check bool) "tear detected" true o2.Wal.torn;
  (* The tail was truncated away, so the log extends cleanly. *)
  Alcotest.(check int) "next lsn reuses the torn slot" 6 (Wal.append o2.Wal.wal "six");
  ignore (Wal.sync o2.Wal.wal);
  Wal.close o2.Wal.wal;
  let o3 = Wal.open_ dir in
  Alcotest.(check (list string))
    "extended log replays"
    (List.init 5 payload @ [ "six" ])
    o3.Wal.entries;
  Alcotest.(check bool) "clean after repair" false o3.Wal.torn;
  Wal.close o3.Wal.wal

let test_wal_truncated_segment () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  fill o.Wal.wal 8;
  ignore (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  let seg = Filename.concat dir (List.hd (seg_files dir)) in
  let size = (Unix.stat seg).Unix.st_size in
  (* Cut into the middle of the final record. *)
  truncate_to seg (size - 20);
  let o2 = Wal.open_ dir in
  Alcotest.(check (list string)) "all but the cut record" (List.init 7 payload) o2.Wal.entries;
  Alcotest.(check bool) "cut detected" true o2.Wal.torn;
  Wal.close o2.Wal.wal

let test_wal_corrupt_mid_segment () =
  let dir = fresh_dir () in
  let o = Wal.open_ ~segment_bytes:512 dir in
  fill o.Wal.wal 30;
  ignore (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  let segs = seg_files dir in
  Alcotest.(check bool) "several segments" true (List.length segs > 2);
  (* Flip a payload byte inside the FIRST segment's second record: the log
     must cut there, and every later segment — unreachable by replay — must
     be deleted. *)
  let first = Filename.concat dir (List.hd segs) in
  corrupt first (8 + 12 + 60 + 12 + 10);
  let o2 = Wal.open_ ~segment_bytes:512 dir in
  Alcotest.(check (list string)) "only the prefix before the flip" [ payload 0 ] o2.Wal.entries;
  Alcotest.(check bool) "corruption detected" true o2.Wal.torn;
  Alcotest.(check int) "later segments deleted" 1 (List.length (seg_files dir));
  Alcotest.(check int) "appends resume after the cut" 2 (Wal.append o2.Wal.wal "two");
  Wal.close o2.Wal.wal

let test_wal_segment_gap () =
  let dir = fresh_dir () in
  let o = Wal.open_ ~segment_bytes:512 dir in
  fill o.Wal.wal 30;
  ignore (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  let segs = seg_files dir in
  Alcotest.(check bool) "at least three segments" true (List.length segs >= 3);
  (* Losing a middle segment breaks the lsn chain: everything from the gap
     on is unreachable and must be dropped. *)
  Sys.remove (Filename.concat dir (List.nth segs 1));
  let o2 = Wal.open_ ~segment_bytes:512 dir in
  let survivors = List.length o2.Wal.entries in
  Alcotest.(check bool) "only the first segment's records" true (survivors > 0 && survivors < 30);
  List.iteri
    (fun i e -> Alcotest.(check string) "contiguous prefix" (payload i) e)
    o2.Wal.entries;
  Alcotest.(check int) "orphan segments deleted" 1 (List.length (seg_files dir));
  Wal.close o2.Wal.wal

let test_wal_abandon_drops_unsynced () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  fill o.Wal.wal 4;
  ignore (Wal.sync o.Wal.wal);
  (* Buffered but never synced: a power cut would lose these. *)
  ignore (Wal.append o.Wal.wal "volatile-1");
  ignore (Wal.append o.Wal.wal "volatile-2");
  Wal.abandon o.Wal.wal;
  let o2 = Wal.open_ dir in
  Alcotest.(check (list string)) "durable prefix only" (List.init 4 payload) o2.Wal.entries;
  Wal.close o2.Wal.wal

let test_wal_truncate_below () =
  let dir = fresh_dir () in
  let o = Wal.open_ ~segment_bytes:512 dir in
  fill o.Wal.wal 30;
  ignore (Wal.sync o.Wal.wal);
  let before = List.length (seg_files dir) in
  (* Everything below lsn 20 is covered by a snapshot: whole segments of
     dead records go; the segment holding lsn 20 (and the active one) stay. *)
  Wal.truncate_below o.Wal.wal ~lsn:20;
  let after = List.length (seg_files dir) in
  Alcotest.(check bool) "segments were retired" true (after < before);
  Wal.close o.Wal.wal;
  let o2 = Wal.open_ ~segment_bytes:512 dir in
  let n = List.length o2.Wal.entries in
  Alcotest.(check bool) "suffix incl. lsn 20 survives" true (n >= 11 && n < 30);
  (* Entries are a contiguous suffix ending at record 29. *)
  List.iteri
    (fun i e -> Alcotest.(check string) "suffix order" (payload (30 - n + i)) e)
    o2.Wal.entries;
  Alcotest.(check int) "lsn chain intact" 31 (Wal.append o2.Wal.wal "31");
  Wal.close o2.Wal.wal

let test_wal_group_commit () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  let mu = Mutex.create () in
  let marks = ref [] in
  let on_durable w =
    Mutex.lock mu;
    marks := w :: !marks;
    Mutex.unlock mu
  in
  let syncer = Wal.syncer ~delay:0.002 ~cap:8 o.Wal.wal ~on_durable in
  for i = 0 to 39 do
    ignore (Wal.syncer_append syncer (payload i))
  done;
  Wal.stop_syncer syncer;
  Alcotest.(check int) "all records durable" 40 (Wal.durable_lsn o.Wal.wal);
  let marks = List.rev !marks in
  Alcotest.(check bool) "watermarks monotone" true
    (List.for_all2 ( < ) (0 :: marks) (marks @ [ 41 ]));
  Alcotest.(check int) "final watermark" 40 (List.nth marks (List.length marks - 1));
  let st = Wal.stats o.Wal.wal in
  Alcotest.(check bool) "fsyncs batched" true (st.Wal.fsyncs < st.Wal.appends);
  Wal.close o.Wal.wal;
  let o2 = Wal.open_ dir in
  Alcotest.(check int) "replay complete" 40 (List.length o2.Wal.entries);
  Wal.close o2.Wal.wal

let test_wal_abandon_syncer () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  let syncer = Wal.syncer ~delay:60.0 ~cap:1_000_000 o.Wal.wal ~on_durable:(fun _ -> ()) in
  ignore (Wal.syncer_append syncer "doomed-1");
  ignore (Wal.syncer_append syncer "doomed-2");
  (* Neither the latency cap (60 s away) nor the size cap fired, and the
     crash performs no final sync: both records must be lost. *)
  Wal.abandon_syncer syncer;
  Wal.abandon o.Wal.wal;
  let o2 = Wal.open_ dir in
  Alcotest.(check (list string)) "unsynced group lost" [] o2.Wal.entries;
  Wal.close o2.Wal.wal

let file_size path = (Unix.stat path).Unix.st_size

let test_wal_preallocation_sizes () =
  (* Preallocated segments hold their full physical size while open (so the
     append path never extends the file) and are trimmed back to the logical
     size on clean close; rotation trims each retired segment the same way. *)
  let dir = fresh_dir () in
  let o = Wal.open_ ~segment_bytes:4096 dir in
  fill o.Wal.wal 3;
  ignore (Wal.sync o.Wal.wal);
  let seg = Filename.concat dir (List.hd (seg_files dir)) in
  Alcotest.(check int) "open segment is extended ahead" 4096 (file_size seg);
  Wal.close o.Wal.wal;
  Alcotest.(check bool) "close trims to logical size" true (file_size seg < 4096);
  let trimmed = file_size seg in
  let o2 = Wal.open_ ~segment_bytes:4096 dir in
  Alcotest.(check (list string)) "replay after trim" (List.init 3 payload) o2.Wal.entries;
  Alcotest.(check bool) "not torn" false o2.Wal.torn;
  Wal.close o2.Wal.wal;
  (* Without preallocation the file only ever holds the logical bytes. *)
  let dir2 = fresh_dir () in
  let p = Wal.open_ ~segment_bytes:4096 ~preallocate:false dir2 in
  fill p.Wal.wal 3;
  ignore (Wal.sync p.Wal.wal);
  let seg2 = Filename.concat dir2 (List.hd (seg_files dir2)) in
  Alcotest.(check int) "unpreallocated = logical bytes" trimmed (file_size seg2);
  Wal.close p.Wal.wal;
  (* Rotation under preallocation: every retired segment is trimmed, and the
     full log replays. *)
  let dir3 = fresh_dir () in
  let r = Wal.open_ ~segment_bytes:512 dir3 in
  fill r.Wal.wal 30;
  ignore (Wal.sync r.Wal.wal);
  Wal.close r.Wal.wal;
  List.iter
    (fun n ->
      let sz = file_size (Filename.concat dir3 n) in
      if sz > 512 + 128 then Alcotest.failf "segment %s not trimmed (%d bytes)" n sz)
    (seg_files dir3);
  let r2 = Wal.open_ ~segment_bytes:512 dir3 in
  Alcotest.(check (list string)) "rotated log replays" (List.init 30 payload) r2.Wal.entries;
  Alcotest.(check bool) "rotation leaves no tear" false r2.Wal.torn;
  Wal.close r2.Wal.wal

let test_wal_preallocated_crash_tail () =
  (* A crash leaves the zero-filled preallocated tail in place. Recovery must
     read the zeros as healthy free space (an all-zero frame header is
     unforgeable), but a garbage frame in that tail is still a tear. *)
  let dir = fresh_dir () in
  let o = Wal.open_ ~segment_bytes:4096 dir in
  fill o.Wal.wal 5;
  ignore (Wal.sync o.Wal.wal);
  Wal.abandon o.Wal.wal;
  let seg = Filename.concat dir (List.hd (seg_files dir)) in
  Alcotest.(check int) "crash leaves the preallocated size" 4096 (file_size seg);
  let o2 = Wal.open_ ~segment_bytes:4096 dir in
  Alcotest.(check (list string)) "records recovered" (List.init 5 payload) o2.Wal.entries;
  Alcotest.(check bool) "zero tail is not a tear" false o2.Wal.torn;
  Wal.close o2.Wal.wal;
  let logical = file_size seg in
  (* Now plant a torn record where the zeros were: re-extend the file and
     write a partial frame at the logical end. *)
  truncate_to seg 4096;
  let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd logical Unix.SEEK_SET);
  let junk = Bytes.of_string "\x00\x00\x00\x30half-a-record" in
  ignore (Unix.write fd junk 0 (Bytes.length junk));
  Unix.close fd;
  let o3 = Wal.open_ ~segment_bytes:4096 dir in
  Alcotest.(check (list string)) "prefix still recovered" (List.init 5 payload) o3.Wal.entries;
  Alcotest.(check bool) "garbage tail is a tear" true o3.Wal.torn;
  Alcotest.(check int) "appends continue past the repair" 6 (Wal.append o3.Wal.wal "six");
  Wal.close o3.Wal.wal

(* ----------------------------- snapshots ----------------------------- *)

let test_snapshot_roundtrip () =
  let dir = fresh_dir () in
  Snapshot.install ~dir ~slot:100 "state-at-100";
  Alcotest.(check (option (pair int string)))
    "latest" (Some (100, "state-at-100")) (Snapshot.load_latest ~dir);
  Snapshot.install ~dir ~slot:200 "state-at-200";
  Alcotest.(check (option (pair int string)))
    "newer wins" (Some (200, "state-at-200")) (Snapshot.load_latest ~dir)

let test_snapshot_retention () =
  let dir = fresh_dir () in
  List.iter (fun s -> Snapshot.install ~keep:2 ~dir ~slot:s (Printf.sprintf "s%d" s))
    [ 10; 20; 30; 40 ];
  let snaps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".snap")
  in
  Alcotest.(check int) "only the two newest kept" 2 (List.length snaps);
  Alcotest.(check (option (pair int string)))
    "newest loadable" (Some (40, "s40")) (Snapshot.load_latest ~dir)

let test_snapshot_corrupt_falls_back () =
  let dir = fresh_dir () in
  Snapshot.install ~dir ~slot:100 "good-old";
  Snapshot.install ~dir ~slot:200 "bad-new";
  (* Flip a byte inside the newest snapshot's payload: its checksum fails
     and loading must fall back to the older valid snapshot. *)
  corrupt (Filename.concat dir "snap-000000000200.snap") 30;
  Alcotest.(check (option (pair int string)))
    "fallback to older" (Some (100, "good-old")) (Snapshot.load_latest ~dir)

let test_snapshot_interrupted_install () =
  let dir = fresh_dir () in
  Snapshot.install ~dir ~slot:100 "stable";
  (* A crash between tmp-write and rename leaves a dangling .tmp (and no
     final file): it must be invisible to load and swept by the next
     install. *)
  let tmp = Filename.concat dir "snap-000000000200.snap.tmp" in
  let oc = open_out_bin tmp in
  output_string oc "DEXSNAP1half-written-garbage";
  close_out oc;
  Alcotest.(check (option (pair int string)))
    "tmp never loads" (Some (100, "stable")) (Snapshot.load_latest ~dir);
  Snapshot.install ~dir ~slot:300 "next";
  Alcotest.(check bool) "tmp swept by the next install" false (Sys.file_exists tmp);
  Alcotest.(check (option (pair int string)))
    "install after interruption" (Some (300, "next")) (Snapshot.load_latest ~dir)

(* ------------------------------ recovery ------------------------------ *)

let test_recovery_composition () =
  let dir = fresh_dir () in
  let o = Wal.open_ dir in
  fill o.Wal.wal 6;
  ignore (Wal.sync o.Wal.wal);
  Snapshot.install ~dir ~slot:4 "snapshot-at-4";
  Wal.truncate_below o.Wal.wal ~lsn:5;
  ignore (Wal.append o.Wal.wal (payload 6));
  ignore (Wal.sync o.Wal.wal);
  Wal.close o.Wal.wal;
  let r = Recovery.run ~dir () in
  Alcotest.(check (option (pair int string)))
    "snapshot found" (Some (4, "snapshot-at-4")) r.Recovery.snapshot;
  (* Truncation is segment-granular: the single active segment survives
     whole, so replay starts at record 0 — entries may predate the
     snapshot, and the caller skips them by content. *)
  Alcotest.(check (list string)) "wal suffix" (List.init 7 payload) r.Recovery.entries;
  Alcotest.(check bool) "clean" false r.Recovery.torn;
  Alcotest.(check int) "append continues" 8 (Wal.append r.Recovery.wal "8");
  Wal.close r.Recovery.wal

let test_recovery_fresh_dir () =
  let dir = fresh_dir () in
  let r = Recovery.run ~dir () in
  Alcotest.(check (option (pair int string))) "no snapshot" None r.Recovery.snapshot;
  Alcotest.(check (list string)) "no entries" [] r.Recovery.entries;
  Wal.close r.Recovery.wal

let () =
  Alcotest.run "dex_store"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip + reopen" `Quick test_wal_roundtrip;
          Alcotest.test_case "segment rotation" `Quick test_wal_segment_rotation;
          Alcotest.test_case "torn final record" `Quick test_wal_torn_final_record;
          Alcotest.test_case "truncated segment" `Quick test_wal_truncated_segment;
          Alcotest.test_case "corrupt mid-segment" `Quick test_wal_corrupt_mid_segment;
          Alcotest.test_case "segment gap" `Quick test_wal_segment_gap;
          Alcotest.test_case "abandon drops unsynced" `Quick test_wal_abandon_drops_unsynced;
          Alcotest.test_case "truncate below" `Quick test_wal_truncate_below;
          Alcotest.test_case "group commit" `Quick test_wal_group_commit;
          Alcotest.test_case "abandoned syncer loses group" `Quick test_wal_abandon_syncer;
          Alcotest.test_case "preallocation sizes" `Quick test_wal_preallocation_sizes;
          Alcotest.test_case "preallocated crash tail" `Quick test_wal_preallocated_crash_tail;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "retention" `Quick test_snapshot_retention;
          Alcotest.test_case "corrupt falls back" `Quick test_snapshot_corrupt_falls_back;
          Alcotest.test_case "interrupted install" `Quick test_snapshot_interrupted_install;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "snapshot + wal" `Quick test_recovery_composition;
          Alcotest.test_case "fresh dir" `Quick test_recovery_fresh_dir;
        ] );
    ]
