(* Tests for dex_metrics: statistics and histograms. *)

open Dex_metrics

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  feq "empty" 0.0 (Stats.mean [])

let test_stddev () =
  feq "constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  (* Population stddev of {2, 4}: 1. *)
  feq "pair" 1.0 (Stats.stddev [ 2.0; 4.0 ]);
  feq "single" 0.0 (Stats.stddev [ 7.0 ])

let test_percentile () =
  let xs = Stats.of_ints [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  feq "p50" 5.0 (Stats.percentile 50.0 xs);
  feq "p90" 9.0 (Stats.percentile 90.0 xs);
  feq "p100" 10.0 (Stats.percentile 100.0 xs);
  feq "p0 -> min" 1.0 (Stats.percentile 0.0 xs)

let test_percentile_errors () =
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.percentile: p outside [0,100]")
    (fun () -> ignore (Stats.percentile 101.0 [ 1.0 ]))

(* Regression: empty samples used to raise, crashing any reporter fed an
   idle interval; they must now mirror [mean []] = 0. *)
let test_empty_samples () =
  feq "percentile empty" 0.0 (Stats.percentile 50.0 []);
  let s = Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Stats.count;
  feq "mean" 0.0 s.Stats.mean;
  feq "min" 0.0 s.Stats.min;
  feq "max" 0.0 s.Stats.max;
  feq "p50" 0.0 s.Stats.p50;
  feq "p99" 0.0 s.Stats.p99;
  Alcotest.(check bool) "equals empty_summary" true (s = Stats.empty_summary)

let test_summary () =
  let s = Stats.summarize (Stats.of_ints [ 1; 2; 3; 4 ]) in
  Alcotest.(check int) "count" 4 s.Stats.count;
  feq "mean" 2.5 s.Stats.mean;
  feq "min" 1.0 s.Stats.min;
  feq "max" 4.0 s.Stats.max;
  feq "p50" 2.0 s.Stats.p50

let test_histogram_basic () =
  let h = Histogram.create () in
  Histogram.add h 1;
  Histogram.add h 1;
  Histogram.add h 4;
  Alcotest.(check int) "count 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "count 4" 1 (Histogram.count h 4);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 2);
  Alcotest.(check int) "total" 3 (Histogram.total h);
  Alcotest.(check (list int)) "keys" [ 1; 4 ] (Histogram.keys h);
  feq "fraction" (2.0 /. 3.0) (Histogram.fraction h 1)

let test_histogram_merge () =
  let h1 = Histogram.create () and h2 = Histogram.create () in
  Histogram.add_many h1 1 3;
  Histogram.add_many h2 1 2;
  Histogram.add_many h2 2 5;
  let m = Histogram.merge h1 h2 in
  Alcotest.(check int) "merged 1" 5 (Histogram.count m 1);
  Alcotest.(check int) "merged 2" 5 (Histogram.count m 2);
  Alcotest.(check int) "originals intact" 3 (Histogram.count h1 1)

let test_histogram_negative_rejected () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add_many: negative count")
    (fun () -> Histogram.add_many h 0 (-1))

let test_histogram_empty_fraction () =
  let h = Histogram.create () in
  feq "empty fraction" 0.0 (Histogram.fraction h 1)

let test_registry_counters () =
  let r = Registry.create () in
  let c = Registry.counter r "svc/commits" in
  Registry.incr c;
  Registry.add c 4;
  Alcotest.(check int) "value" 5 (Registry.value c);
  (* Idempotent registration: same handle state under the same name. *)
  let c' = Registry.counter r "svc/commits" in
  Registry.incr c';
  Alcotest.(check int) "shared" 6 (Registry.value c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: \"svc/commits\" is already registered as a counter") (fun () ->
      ignore (Registry.gauge r "svc/commits"))

let test_registry_gauges () =
  let r = Registry.create () in
  let g = Registry.gauge r "wal/max_group" in
  Registry.set_max g 3;
  Registry.set_max g 7;
  Registry.set_max g 5;
  Alcotest.(check int) "max retained" 7 (Registry.gauge_value g);
  Registry.set g 2;
  Alcotest.(check int) "set" 2 (Registry.gauge_value g);
  let backlog = ref 11 in
  Registry.gauge_fn r "svc/backlog" (fun () -> !backlog);
  let snap = Registry.snapshot r in
  Alcotest.(check int) "fn gauge sampled" 11 (Registry.get snap "svc/backlog");
  backlog := 3;
  Alcotest.(check int) "fn gauge resampled" 3 (Registry.get (Registry.snapshot r) "svc/backlog")

let test_registry_timer () =
  let r = Registry.create () in
  let tm = Registry.timer r "wal/fsync" in
  Registry.observe_ns tm 1_000;
  Registry.observe_ns tm 1_000;
  Registry.observe_ns tm 1_000_000;
  let snap = Registry.snapshot r in
  (match Registry.find_dist snap "wal/fsync" with
  | None -> Alcotest.fail "dist missing"
  | Some d ->
    Alcotest.(check int) "count" 3 d.Registry.count;
    feq "mean" (1_002_000.0 /. 3.0) (Registry.dist_mean_ns d);
    (* p50 lands in the bucket covering 1000 ns: upper bound 1024. *)
    feq "p50 bucket bound" 1024.0 (Registry.dist_quantile_ns d 0.5);
    Alcotest.(check bool) "p99 >= 1e6" true (Registry.dist_quantile_ns d 0.99 >= 1_000_000.0));
  Alcotest.(check int) "get on dist = count" 3 (Registry.get snap "wal/fsync")

let test_registry_snapshot_merge () =
  let mk commits backlog =
    let r = Registry.create () in
    Registry.add (Registry.counter r "svc/commits") commits;
    Registry.set (Registry.gauge r "svc/backlog") backlog;
    Registry.observe_ns (Registry.timer r "svc/lat") 500;
    Registry.snapshot r
  in
  let merged = Registry.merge [ mk 5 1; mk 7 2 ] in
  Alcotest.(check int) "counters sum" 12 (Registry.get merged "svc/commits");
  Alcotest.(check int) "gauges sum" 3 (Registry.get merged "svc/backlog");
  (match Registry.find_dist merged "svc/lat" with
  | Some d -> Alcotest.(check int) "dists merge" 2 d.Registry.count
  | None -> Alcotest.fail "merged dist missing");
  Alcotest.(check int) "absent name is 0" 0 (Registry.get merged "no/such");
  (* Sorted, and both renderings mention every metric. *)
  let names = List.map fst merged in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let text = Registry.to_text merged and json = Registry.to_json merged in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in text") true (contains text n);
      Alcotest.(check bool) (n ^ " in json") true (contains json n))
    names

let () =
  Alcotest.run "dex_metrics"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
          Alcotest.test_case "empty samples" `Quick test_empty_samples;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "gauges" `Quick test_registry_gauges;
          Alcotest.test_case "timer" `Quick test_registry_timer;
          Alcotest.test_case "snapshot merge" `Quick test_registry_snapshot_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basic;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "negative rejected" `Quick test_histogram_negative_rejected;
          Alcotest.test_case "empty fraction" `Quick test_histogram_empty_fraction;
        ] );
    ]
